"""Synthetic barnes: Barnes-Hut N-body tree construction signature.

SPLASH-2 barnes builds an octree concurrently: threads insert bodies,
locking tree cells; the cell-subdivision counters are hot and contended, so
conflicting accesses by different threads are close together in time —
which is why happens-before detects all ten injected bugs here (Table 2).
The working set is small (fits the 1 MB L2), so the default HARD also
detects all ten.

False-alarm profile: moderate hand-crafted synchronization (the tree-ready
flags) visible even to the ideal detectors (20/18), plus line-packed
per-body data producing false sharing for both default detectors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.threads.program import ParallelProgram
from repro.workloads.base import (
    STAGE_MAIN,
    STAGE_MIX2,
    STAGE_QUIET,
    WorkloadBuilder,
    benign_counters,
    false_sharing_locked,
    false_sharing_private,
    flag_handoff,
    locked_counters,
    producer_consumer,
    read_shared_table,
    streaming_private,
)


@dataclass(frozen=True)
class BarnesParams:
    """Size knobs (defaults calibrated against Table 2's shapes)."""

    num_cell_counters: int = 2
    counter_body_words: int = 10
    counter_updates_per_thread: int = 850
    fs_private_lines: int = 10
    fs_private_rounds: int = 5
    fs_locked_lines: int = 13
    fs_locked_rounds: int = 4
    flag_instances: int = 24
    flag_site_groups: int = 6
    benign: int = 2
    pc_tasks: int = 140
    pc_site_groups: int = 6
    stream_lines_per_thread: int = 2600
    table_lines: int = 150


def build(seed: object = 0, params: BarnesParams | None = None) -> ParallelProgram:
    """Build one barnes instance (deterministic in ``seed``)."""
    p = params or BarnesParams()
    b = WorkloadBuilder("barnes", num_threads=4, seed=seed)

    # The body array: initialized once, then read by everyone.
    read_shared_table(b, label="bodies", num_lines=p.table_lines, reads_per_thread=250)

    hot = b.new_lock("treelock")
    locked_counters(
        b,
        label="cellcnt",
        num_counters=p.num_cell_counters,
        updates_per_thread=p.counter_updates_per_thread // 2,
        body_words=p.counter_body_words,
        stage=STAGE_MAIN,
    )
    locked_counters(
        b,
        label="cellcnt2",
        num_counters=p.num_cell_counters,
        updates_per_thread=p.counter_updates_per_thread
        - p.counter_updates_per_thread // 2,
        body_words=p.counter_body_words,
        stage=STAGE_MIX2,
    )
    false_sharing_private(
        b, label="bodyacc", num_lines=p.fs_private_lines, rounds=p.fs_private_rounds
    )
    false_sharing_locked(
        b,
        label="cellhdr",
        num_lines=p.fs_locked_lines,
        rounds=p.fs_locked_rounds,
        hot_lock=hot,
    )
    flag_handoff(
        b,
        label="treeready",
        num_instances=p.flag_instances,
        site_groups=p.flag_site_groups,
    )
    benign_counters(b, label="stats", num_counters=p.benign, updates_per_thread=40)
    producer_consumer(
        b,
        label="cells",
        num_tasks=p.pc_tasks,
        payload_words=2,
        site_groups=p.pc_site_groups,
    )
    third = p.stream_lines_per_thread // 3
    streaming_private(b, label="work", lines_per_thread=third, stage=STAGE_MAIN)
    streaming_private(b, label="workq", lines_per_thread=third, stage=STAGE_QUIET)
    streaming_private(
        b,
        label="workm",
        lines_per_thread=p.stream_lines_per_thread - 2 * third,
        stage=STAGE_MIX2,
    )
    b.end_phase()

    # Force-computation phase: mostly private work after a barrier.
    streaming_private(b, label="forces", lines_per_thread=p.stream_lines_per_thread)
    b.end_phase(with_barrier=False)
    return b.build()
