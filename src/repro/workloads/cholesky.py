"""Synthetic cholesky: sparse Cholesky factorization's sync signature.

SPLASH-2 cholesky is a task-queue application: threads pull supernode tasks
from a shared queue guarded by a hot lock, update columns guarded by
per-column locks, and barely use barriers.  The signature reproduced here:

* a hot task-queue lock through which almost every thread iteration passes
  (producing dense happens-before chains — the reason happens-before
  misses 4 of cholesky's 10 injected bugs in Table 2);
* task payloads handed off through the queue and accessed without locks
  (ordered, not locked — ideal-lockset false alarms);
* per-column locks over a large column set with long reuse distances and a
  working set beyond the 1 MB L2 (the default HARD's one missed bug);
* packed column headers protected by *different* locks sharing cache lines
  (the dominant, HARD-only false-sharing alarms: 91 vs 37 in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.threads.program import ParallelProgram
from repro.workloads.base import (
    STAGE_MAIN,
    STAGE_MIX2,
    STAGE_QUIET,
    MigratoryObjects,
    WorkloadBuilder,
    false_sharing_locked,
    false_sharing_private,
    flag_handoff,
    locked_counters,
    producer_consumer,
    read_shared_table,
    streaming_private,
)


@dataclass(frozen=True)
class CholeskyParams:
    """Size knobs (defaults calibrated against Table 2's shapes)."""

    num_tasks: int = 550
    payload_words: int = 3
    task_site_groups: int = 16
    task_consume_lag: int = 4
    flag_instances: int = 9
    flag_site_groups: int = 3
    fs_locked_lines: int = 30
    fs_locked_rounds: int = 5
    fs_private_lines: int = 12
    fs_private_rounds: int = 4
    num_columns: int = 1024
    column_visits_per_thread: int = 400
    num_supernode_counters: int = 3
    counter_updates_per_thread: int = 700
    counter_body_words: int = 6
    stream_lines_per_thread: int = 12000
    table_lines: int = 220


def build(seed: object = 0, params: CholeskyParams | None = None) -> ParallelProgram:
    """Build one cholesky instance (deterministic in ``seed``)."""
    p = params or CholeskyParams()
    b = WorkloadBuilder("cholesky", num_threads=4, seed=seed)

    # Symbolic-factorization structure: built once, then read-shared.
    read_shared_table(
        b, label="structure", num_lines=p.table_lines, reads_per_thread=300
    )

    queue_lock = b.new_lock("taskq")
    columns = MigratoryObjects(
        b,
        label="columns",
        num_objects=p.num_columns,
        object_bytes=32,
        hot_lock=queue_lock,
    )
    columns.emit_warm()
    # Mixed locked work on both sides of the quiet stage: the STAGE_MIX2
    # half supplies the lock chains that order quiet-stage accesses before
    # the late-stage revisits of the false-sharing pattern.
    columns.emit_visits(p.column_visits_per_thread // 2, stage=STAGE_MAIN)
    columns.emit_visits(
        p.column_visits_per_thread - p.column_visits_per_thread // 2,
        phase_tag="b",
        stage=STAGE_MIX2,
    )

    # The hot, contended supernode counters: the injectable pool whose bugs
    # happens-before can see (wide race windows, fierce contention).
    half_updates = p.counter_updates_per_thread // 2
    locked_counters(
        b,
        label="supcnt",
        num_counters=p.num_supernode_counters,
        updates_per_thread=half_updates,
        body_words=p.counter_body_words,
        stage=STAGE_MAIN,
    )
    locked_counters(
        b,
        label="supcnt2",
        num_counters=p.num_supernode_counters,
        updates_per_thread=p.counter_updates_per_thread - half_updates,
        body_words=p.counter_body_words,
        stage=STAGE_MIX2,
    )
    false_sharing_private(
        b,
        label="rowmap",
        num_lines=p.fs_private_lines,
        rounds=p.fs_private_rounds,
    )

    producer_consumer(
        b,
        label="tasks",
        num_tasks=p.num_tasks,
        payload_words=p.payload_words,
        site_groups=p.task_site_groups,
        queue_lock=queue_lock,
        consume_lag_blocks=p.task_consume_lag,
    )
    flag_handoff(
        b,
        label="supready",
        num_instances=p.flag_instances,
        site_groups=p.flag_site_groups,
    )
    false_sharing_locked(
        b,
        label="colhdr",
        num_lines=p.fs_locked_lines,
        rounds=p.fs_locked_rounds,
        hot_lock=queue_lock,
    )
    third = p.stream_lines_per_thread // 3
    streaming_private(b, label="frontal", lines_per_thread=third)
    streaming_private(b, label="frontalq", lines_per_thread=1000, stage=STAGE_QUIET)
    streaming_private(
        b,
        label="frontal2",
        lines_per_thread=p.stream_lines_per_thread - 2 * third,
        stage=STAGE_MIX2,
    )
    b.end_phase(with_barrier=False)
    return b.build()
