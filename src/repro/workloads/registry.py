"""Registry mapping the paper's six application names to their builders."""

from __future__ import annotations

from typing import Callable

from repro.common.errors import HarnessError
from repro.threads.program import ParallelProgram
from repro.workloads import barnes, cholesky, fmm, ocean, radix, raytrace, server, water

#: Builders for the six lock-based SPLASH-2 applications of Section 4.
_BUILDERS: dict[str, Callable[..., ParallelProgram]] = {
    "cholesky": cholesky.build,
    "barnes": barnes.build,
    "fmm": fmm.build,
    "ocean": ocean.build,
    "water-nsquared": water.build,
    "raytrace": raytrace.build,
    # Extras outside the paper's Table 2 matrix:
    "radix": radix.build,
    # Server-shaped many-core workloads (the scaling study's universe):
    "webserver": server.build_webserver,
    "workqueue": server.build_workqueue,
    "rwlock-cache": server.build_rwlock_cache,
    "bus-stress": server.build_bus_stress,
}

#: Server-shaped workloads for the many-core scaling study.
SERVER_WORKLOADS: tuple[str, ...] = (
    "webserver",
    "workqueue",
    "rwlock-cache",
    "bus-stress",
)

#: Extra workloads outside the paper's evaluation matrix.
EXTRA_WORKLOADS: tuple[str, ...] = ("radix",) + SERVER_WORKLOADS

#: The application names, in the paper's table order.
WORKLOAD_NAMES: tuple[str, ...] = (
    "cholesky",
    "barnes",
    "fmm",
    "ocean",
    "water-nsquared",
    "raytrace",
)


def build_workload(name: str, seed: object = 0, params: object = None) -> ParallelProgram:
    """Build the named workload with the given seed.

    Args:
        name: one of :data:`WORKLOAD_NAMES`.
        seed: deterministic instance seed (same seed → same program).
        params: optional app-specific parameter dataclass (e.g.
            :class:`~repro.workloads.cholesky.CholeskyParams`).
    """
    if name.startswith("fuzz:"):
        # Generated fuzz programs are addressable like any application:
        # ``fuzz:<n>`` builds program <n> of the differential-fuzzing
        # generator (optionally shaped by a FuzzSpec passed as ``params``).
        from repro.fuzz.generator import build_fuzz_workload

        return build_fuzz_workload(name, seed, params)
    builder = _BUILDERS.get(name)
    if builder is None:
        raise HarnessError(
            f"unknown workload {name!r}; known: "
            f"{', '.join(WORKLOAD_NAMES + EXTRA_WORKLOADS)} (or fuzz:<n>)"
        )
    if params is None:
        return builder(seed)
    return builder(seed, params)
