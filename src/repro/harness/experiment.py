"""The experiment runner behind every table and figure.

Reproduces the paper's protocol (Section 4):

* for each application, 10 runs, each with one *different* randomly
  injected dynamic race (the bug seed is the run index);
* detection is scored per run: did the detector report any race matching
  the injected bug's de-protected accesses (by address overlap or source
  site)?
* false alarms are counted on the *race-free* execution, at source-site
  level;
* all detectors score against the *identical* interleaved trace of each
  run.

Traces are memoised in memory per (app, run) and detector verdicts are
cached on disk (JSON, keyed by a configuration signature), because the
sensitivity sweeps of Section 5.2 revisit the same runs under many detector
configurations.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.common.events import Trace
from repro.common.rng import derive_seed
from repro.harness.detectors import config_signature, make_detector
from repro.reporting import DetectionResult
from repro.threads.program import InjectedBug, ParallelProgram
from repro.threads.runtime import interleave
from repro.threads.scheduler import RandomScheduler
from repro.workloads.injection import inject_bug
from repro.workloads.registry import build_workload

#: Run index reserved for the race-free (no injection) execution.
CLEAN_RUN = -1


@dataclass
class RunOutcome:
    """Scored verdict of one detector on one run."""

    detector: str
    app: str
    run: int
    detected: bool
    alarm_count: int
    dynamic_reports: int
    cycles: int = 0
    detector_extra_cycles: int = 0

    @property
    def overhead_fraction(self) -> float:
        """Execution-time overhead of the detector hardware (Figure 8)."""
        base = self.cycles - self.detector_extra_cycles
        return self.detector_extra_cycles / base if base > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (consumed by RunReport tooling)."""
        data = asdict(self)
        data["overhead_fraction"] = self.overhead_fraction
        return data


def score_detection(result: DetectionResult, bug: InjectedBug | None) -> bool:
    """True iff any report corresponds to the injected bug."""
    if bug is None:
        return False
    for report in result.reports:
        if bug.matches_report(report.addr, report.size, report.site):
            return True
    return False


class ExperimentRunner:
    """Builds traces on demand and scores detectors against them."""

    def __init__(
        self,
        *,
        workload_seed: object = 0,
        cache_dir: str | Path | None = None,
        runs: int = 10,
    ):
        self.workload_seed = workload_seed
        self.runs = runs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._programs: dict[tuple[str, int], ParallelProgram] = {}
        self._traces: dict[tuple[str, int], Trace] = {}
        self._digests: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------ traces

    def program_for(self, app: str, run: int) -> ParallelProgram:
        """The (possibly bug-injected) program of one run."""
        key = (app, run)
        program = self._programs.get(key)
        if program is None:
            program = build_workload(app, seed=self.workload_seed)
            if run != CLEAN_RUN:
                program = inject_bug(program, seed=(self.workload_seed, run))
            self._programs[key] = program
        return program

    def trace_for(self, app: str, run: int) -> Trace:
        """The interleaved trace of one run (memoised)."""
        key = (app, run)
        trace = self._traces.get(key)
        if trace is None:
            program = self.program_for(app, run)
            seed = derive_seed("schedule", app, self.workload_seed, run)
            # Short bursts approximate the fine-grained concurrency of a
            # real 4-core CMP, where instructions of different threads
            # interleave at cycle granularity.
            scheduler = RandomScheduler(seed=seed, min_burst=1, max_burst=8)
            trace = interleave(program, scheduler).trace
            self._traces[key] = trace
        return trace

    def drop_trace(self, app: str, run: int) -> None:
        """Release a memoised trace (the sweeps manage memory explicitly)."""
        self._traces.pop((app, run), None)
        self._programs.pop((app, run), None)

    # ----------------------------------------------------------- scoring

    def run_detector(self, app: str, run: int, key: str, **overrides) -> RunOutcome:
        """Run one detector configuration on one run (disk-cached)."""
        signature = config_signature(key, **overrides)
        cached = self._cache_get(app, run, signature)
        if cached is not None:
            return cached
        trace = self.trace_for(app, run)
        detector = make_detector(key, **overrides)
        result = detector.run(trace)
        bug = self.program_for(app, run).injected_bug
        outcome = RunOutcome(
            detector=signature,
            app=app,
            run=run,
            detected=score_detection(result, bug),
            alarm_count=result.reports.alarm_count,
            dynamic_reports=result.reports.dynamic_count,
            cycles=result.cycles,
            detector_extra_cycles=result.detector_extra_cycles,
        )
        self._cache_put(outcome, signature)
        return outcome

    def detection_count(self, app: str, key: str, **overrides) -> int:
        """Bugs detected out of :attr:`runs` injected runs."""
        return sum(
            self.run_detector(app, run, key, **overrides).detected
            for run in range(self.runs)
        )

    def false_alarm_count(self, app: str, key: str, **overrides) -> int:
        """Source-level alarms on the race-free run."""
        return self.run_detector(app, CLEAN_RUN, key, **overrides).alarm_count

    def overhead(self, app: str, key: str = "hard-default", **overrides) -> RunOutcome:
        """The race-free run's outcome, for overhead accounting (Figure 8)."""
        return self.run_detector(app, CLEAN_RUN, key, **overrides)

    # ------------------------------------------------------------- cache

    def _program_digest(self, app: str, run: int) -> int:
        """A stable digest of the run's program content.

        Folding this into the cache key makes cached verdicts self-invalidate
        whenever a workload generator (or the injection protocol) changes.
        """
        key = (app, run)
        digest = self._digests.get(key)
        if digest is None:
            program = self.program_for(app, run)
            parts: list[object] = [program.name]
            for thread in program.threads:
                parts.append(thread.thread_id)
                parts.append(len(thread.ops))
                # Sample ops densely enough to catch any generator change
                # without hashing hundreds of thousands of objects.
                parts.extend(
                    (op.kind.value, op.addr, op.size, op.cycles)
                    for op in thread.ops[::7]
                )
            digest = derive_seed(*parts)
            self._digests[key] = digest
        return digest

    def _cache_path(self, app: str, run: int, signature: str) -> Path | None:
        if self.cache_dir is None:
            return None
        digest = self._program_digest(app, run)
        stem = f"{app}_{run}_{derive_seed(signature, self.workload_seed, digest):016x}"
        return self.cache_dir / f"{stem}.json"

    def _cache_get(self, app: str, run: int, signature: str) -> RunOutcome | None:
        path = self._cache_path(app, run, signature)
        if path is None or not path.exists():
            return None
        data = json.loads(path.read_text())
        if data.get("signature") != signature:
            return None
        return RunOutcome(
            detector=signature,
            app=app,
            run=run,
            detected=data["detected"],
            alarm_count=data["alarm_count"],
            dynamic_reports=data["dynamic_reports"],
            cycles=data["cycles"],
            detector_extra_cycles=data["detector_extra_cycles"],
        )

    def _cache_put(self, outcome: RunOutcome, signature: str) -> None:
        path = self._cache_path(outcome.app, outcome.run, signature)
        if path is None:
            return
        payload = json.dumps(
            {
                "signature": signature,
                "detected": outcome.detected,
                "alarm_count": outcome.alarm_count,
                "dynamic_reports": outcome.dynamic_reports,
                "cycles": outcome.cycles,
                "detector_extra_cycles": outcome.detector_extra_cycles,
            }
        )
        # Write-then-rename so a crashed or parallel sweep never leaves a
        # truncated JSON file that poisons every later cache hit.
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(payload)
        os.replace(tmp, path)


@dataclass
class TableCell:
    """One "detected / alarms" cell of a paper-style table."""

    detected: int | None = None
    alarms: int | None = None
    extras: dict[str, float] = field(default_factory=dict)
