"""The experiment runner behind every table and figure.

Reproduces the paper's protocol (Section 4):

* for each application, 10 runs, each with one *different* randomly
  injected dynamic race (the bug seed is the run index);
* detection is scored per run: did the detector report any race matching
  the injected bug's de-protected accesses (by address overlap or source
  site)?
* false alarms are counted on the *race-free* execution, at source-site
  level;
* all detectors score against the *identical* interleaved trace of each
  run.

The evaluation grid — (app, run, detector configuration) cells — is
embarrassingly parallel, and every stochastic choice flows through
:func:`~repro.common.rng.derive_seed`, so a cell's outcome is a pure
function of its coordinates.  :meth:`ExperimentRunner.run_detector`
evaluates one cell; :meth:`ExperimentRunner.prefetch` evaluates many, and
with ``jobs > 1`` fans them out across worker processes via
:mod:`repro.harness.parallel`.

Three caches keep the sweeps cheap:

* traces are memoised in memory per (app, run) and — when a cache
  directory is configured — persisted to a process-safe on-disk
  :class:`~repro.harness.tracecache.TraceCache` so workers don't
  re-interleave the same run;
* detector verdicts are cached on disk (JSON, keyed by a configuration
  signature) with atomic write-then-rename, because the sensitivity sweeps
  of Section 5.2 revisit the same runs under many detector configurations;
* verdicts are additionally memoised in memory, which is how parallel
  prefetch results reach the serial table-assembly path byte-for-byte
  unchanged.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.common.events import Trace
from repro.common.fsio import atomic_write_text
from repro.common.rng import derive_seed
from repro.engine import EngineSession
from repro.harness.detectors import DetectorConfig, config_signature
from repro.harness.tracecache import TapeCache, TraceCache
from repro.obs.metrics import MetricsRegistry
from repro.reporting import DetectionResult
from repro.threads.program import InjectedBug, ParallelProgram
from repro.threads.runtime import interleave
from repro.threads.scheduler import RandomScheduler
from repro.workloads.injection import inject_bug
from repro.workloads.registry import build_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.harness.parallel import GridCell, GridReport

#: Run index reserved for the race-free (no injection) execution.
CLEAN_RUN = -1

#: Scheduler burst bounds used for every experiment interleaving.  Short
#: bursts approximate the fine-grained concurrency of a real 4-core CMP,
#: where instructions of different threads interleave at cycle granularity.
SCHEDULE_MIN_BURST = 1
SCHEDULE_MAX_BURST = 8


@dataclass
class RunOutcome:
    """Scored verdict of one detector on one run."""

    detector: str
    app: str
    run: int
    detected: bool
    alarm_count: int
    dynamic_reports: int
    cycles: int = 0
    detector_extra_cycles: int = 0

    @property
    def overhead_fraction(self) -> float:
        """Execution-time overhead of the detector hardware (Figure 8)."""
        base = self.cycles - self.detector_extra_cycles
        return self.detector_extra_cycles / base if base > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (consumed by RunReport tooling)."""
        data = asdict(self)
        data["overhead_fraction"] = self.overhead_fraction
        return data


def score_detection(result: DetectionResult, bug: InjectedBug | None) -> bool:
    """True iff any report corresponds to the injected bug."""
    if bug is None:
        return False
    for report in result.reports:
        if bug.matches_report(report.addr, report.size, report.site):
            return True
    return False


def schedule_seed_for(app: str, workload_seed: object, run: int) -> int:
    """The deterministic interleaving seed of one (app, run) execution.

    A pure function of the cell coordinates, so serial and parallel
    evaluation — and any worker process — derive the identical schedule.
    """
    return derive_seed("schedule", app, workload_seed, run)


class ExperimentRunner:
    """Builds traces on demand and scores detectors against them.

    Args:
        workload_seed: seed of the workload generators.
        cache_dir: directory for disk-cached verdicts (and, under its
            ``traces/`` subdirectory, interleaved traces).  ``None``
            disables both disk caches.
        runs: injected runs per application (the paper uses 10).
        jobs: worker processes for :meth:`prefetch`; ``1`` (the default)
            evaluates everything serially in this process.
        trace_memo_limit: maximum number of traces held in the in-memory
            memo at once (least-recently-used eviction via
            :meth:`drop_trace`).  Traces are by far the largest objects a
            sweep touches — hundreds of thousands of events each — so an
            unbounded memo grows linearly with the number of (app, run)
            executions visited.  ``None`` disables the bound.  The on-disk
            trace cache is unaffected: evicted traces reload from disk.
        metrics: an existing :class:`~repro.obs.metrics.MetricsRegistry` to
            book harness counters into (defaults to a private registry);
            pass an Observability bundle's registry to surface trace-memo
            and cache counters in its RunReport.
    """

    #: Default LRU capacity of the in-memory trace memo.  A full Table 2
    #: assembly revisits each (app, run) execution for several detector
    #: configurations back to back, so a small window captures nearly all
    #: reuse while bounding peak memory to a handful of traces.
    DEFAULT_TRACE_MEMO_LIMIT = 8

    def __init__(
        self,
        *,
        workload_seed: object = 0,
        cache_dir: str | Path | None = None,
        runs: int = 10,
        jobs: int = 1,
        trace_cache_dir: str | Path | None = None,
        trace_memo_limit: int | None = DEFAULT_TRACE_MEMO_LIMIT,
        metrics: MetricsRegistry | None = None,
        engine_path: str = "auto",
        engine_jobs: int = 1,
        tape_cache_dir: str | Path | None = None,
    ):
        self.workload_seed = workload_seed
        self.engine_path = engine_path
        #: Worker budget of each *engine session* (the sharded path); the
        #: grid-level ``jobs`` budget is separate — ``run_grid`` splits one
        #: process budget between the two layers.
        self.engine_jobs = max(1, int(engine_jobs))
        self.runs = runs
        self.jobs = max(1, int(jobs))
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        if trace_cache_dir is None and self.cache_dir is not None:
            trace_cache_dir = self.cache_dir / "traces"
        self.trace_cache = TraceCache(trace_cache_dir)
        if tape_cache_dir is None and self.cache_dir is not None:
            tape_cache_dir = self.cache_dir / "tapes"
        self.tape_cache = TapeCache(tape_cache_dir)
        # Callers may share a registry (e.g. an Observability bundle's) so
        # harness cache counters surface in their RunReport/metrics output.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if trace_memo_limit is not None and trace_memo_limit < 1:
            trace_memo_limit = 1
        self.trace_memo_limit = trace_memo_limit
        self._programs: dict[tuple[str, int], ParallelProgram] = {}
        self._traces: OrderedDict[tuple[str, int], Trace] = OrderedDict()
        self._digests: dict[tuple[str, int], int] = {}
        self._outcomes: dict[tuple[str, int, str], RunOutcome] = {}

    # ------------------------------------------------------------ traces

    def program_for(self, app: str, run: int) -> ParallelProgram:
        """The (possibly bug-injected) program of one run."""
        key = (app, run)
        program = self._programs.get(key)
        if program is None:
            program = build_workload(app, seed=self.workload_seed)
            if run != CLEAN_RUN:
                program = inject_bug(program, seed=(self.workload_seed, run))
            self._programs[key] = program
        return program

    def trace_for(self, app: str, run: int) -> Trace:
        """The interleaved trace of one run (memoised, disk-cached).

        The memo is an LRU bounded by :attr:`trace_memo_limit`; the least
        recently used trace is released (via :meth:`drop_trace`) when a new
        one would exceed the bound.
        """
        key = (app, run)
        trace = self._traces.get(key)
        if trace is None:
            self.metrics.add("harness.trace_memo_misses")
            trace = self._build_trace(app, run)
            self._traces[key] = trace
            limit = self.trace_memo_limit
            if limit is not None:
                while len(self._traces) > limit:
                    oldest_app, oldest_run = next(iter(self._traces))
                    self.drop_trace(oldest_app, oldest_run)
                    self.metrics.add("harness.trace_memo_evictions")
        else:
            self.metrics.add("harness.trace_memo_hits")
            self._traces.move_to_end(key)
        return trace

    def _build_trace(self, app: str, run: int) -> Trace:
        """Load one run's trace from the disk cache or interleave it."""
        cache_key = self._trace_cache_key(app, run)
        trace = self.trace_cache.load(app, run, *cache_key)
        if trace is not None:
            self.metrics.add("harness.trace_cache_hits")
            return trace
        program = self.program_for(app, run)
        seed = schedule_seed_for(app, self.workload_seed, run)
        scheduler = RandomScheduler(
            seed=seed, min_burst=SCHEDULE_MIN_BURST, max_burst=SCHEDULE_MAX_BURST
        )
        with self.metrics.time("harness.interleave"):
            trace = interleave(program, scheduler).trace
        self.metrics.add("harness.traces_built")
        self.trace_cache.store(trace, app, run, *cache_key)
        return trace

    def _trace_cache_key(self, app: str, run: int) -> tuple[object, ...]:
        """Everything beyond (app, run) that determines the interleaving."""
        return (
            self.workload_seed,
            self._program_digest(app, run),
            SCHEDULE_MIN_BURST,
            SCHEDULE_MAX_BURST,
        )

    def drop_trace(self, app: str, run: int) -> None:
        """Release a memoised trace (the sweeps manage memory explicitly)."""
        self._traces.pop((app, run), None)
        self._programs.pop((app, run), None)

    # ----------------------------------------------------------- scoring

    def run_detector(
        self, app: str, run: int, config: DetectorConfig | str, **overrides
    ) -> RunOutcome:
        """Run one detector configuration on one run (memoised, disk-cached).

        ``config`` is a :class:`~repro.harness.detectors.DetectorConfig`
        or a detector key with legacy keyword overrides.  A thin shim over
        :meth:`run_detectors` with a single-config batch.
        """
        cfg = DetectorConfig.coerce(config, **overrides)
        return self.run_detectors(app, run, [cfg])[0]

    def run_detectors(
        self, app: str, run: int, configs: Sequence[DetectorConfig | str]
    ) -> list[RunOutcome]:
        """Score many detector configurations against one run's trace.

        Every configuration not already memoised or disk-cached is evaluated
        in a single :class:`~repro.engine.EngineSession` pass over the trace:
        the trace is walked once and compatible configurations share one
        simulated machine replay (or, on the batch path, one prerecorded
        machine tape over the columnar encoding — :attr:`engine_path`
        selects the walk), while each outcome stays bit-for-bit what a
        standalone :meth:`run_detector` call would have produced.

        Returns one :class:`RunOutcome` per entry of ``configs``, in order.
        """
        cfgs = [DetectorConfig.coerce(config) for config in configs]
        signatures = [config_signature(cfg) for cfg in cfgs]
        outcomes: dict[int, RunOutcome] = {}
        pending: list[tuple[int, DetectorConfig, str]] = []
        pending_signatures: set[str] = set()
        for index, (cfg, signature) in enumerate(zip(cfgs, signatures)):
            memo_key = (app, run, signature)
            outcome = self._outcomes.get(memo_key)
            if outcome is None:
                outcome = self._cache_get(app, run, signature)
                if outcome is not None:
                    self._outcomes[memo_key] = outcome
            if outcome is not None:
                outcomes[index] = outcome
            elif signature not in pending_signatures:
                pending.append((index, cfg, signature))
                pending_signatures.add(signature)
        if pending:
            trace = self.trace_for(app, run)
            session = EngineSession(
                trace,
                path=self.engine_path,
                jobs=self.engine_jobs,
                tape_cache=self.tape_cache,
            )
            for _, cfg, _ in pending:
                session.add_config(cfg)
            with self.metrics.time("harness.detect"):
                results = session.run()
            bug = self.program_for(app, run).injected_bug
            for (index, cfg, signature), result in zip(pending, results):
                self.metrics.add("harness.cells_evaluated")
                outcome = RunOutcome(
                    detector=signature,
                    app=app,
                    run=run,
                    detected=score_detection(result, bug),
                    alarm_count=result.reports.alarm_count,
                    dynamic_reports=result.reports.dynamic_count,
                    cycles=result.cycles,
                    detector_extra_cycles=result.detector_extra_cycles,
                )
                self._cache_put(outcome, signature)
                self._outcomes[(app, run, signature)] = outcome
                outcomes[index] = outcome
        # Duplicate configurations in one batch resolve from the memo.
        return [
            outcomes[index]
            if index in outcomes
            else self._outcomes[(app, run, signatures[index])]
            for index in range(len(cfgs))
        ]

    def detection_count(
        self, app: str, config: DetectorConfig | str, **overrides
    ) -> int:
        """Bugs detected out of :attr:`runs` injected runs."""
        return sum(
            self.run_detector(app, run, config, **overrides).detected
            for run in range(self.runs)
        )

    def false_alarm_count(
        self, app: str, config: DetectorConfig | str, **overrides
    ) -> int:
        """Source-level alarms on the race-free run."""
        return self.run_detector(app, CLEAN_RUN, config, **overrides).alarm_count

    def overhead(
        self, app: str, config: DetectorConfig | str = "hard-default", **overrides
    ) -> RunOutcome:
        """The race-free run's outcome, for overhead accounting (Figure 8)."""
        return self.run_detector(app, CLEAN_RUN, config, **overrides)

    # ----------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release every mmap the runner's caches handed out (idempotent).

        Multi-thousand-cell sweeps would otherwise hold one file descriptor
        per visited trace/tape cache entry until garbage collection; the
        runner is also a context manager so call sites can scope this.
        """
        self._traces.clear()
        self.trace_cache.close()
        self.tape_cache.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------- prefetch

    def prefetch(self, cells: Iterable["GridCell"]) -> "GridReport | None":
        """Evaluate many grid cells ahead of the serial assembly path.

        With ``jobs == 1`` this is a plain serial warm-up of the memo (the
        exact work the assembly path would do anyway, in the same order).
        With ``jobs > 1`` the cells fan out across worker processes; the
        merged outcomes seed the in-memory memo, so the subsequent serial
        reads reproduce bit-for-bit what a serial evaluation returns.
        """
        from repro.harness import parallel

        pending = []
        for cell in cells:
            signature = config_signature(cell.config)
            if (cell.app, cell.run, signature) not in self._outcomes:
                pending.append(cell)
        if not pending:
            return None
        if self.jobs <= 1:
            # Group the pending cells by execution so each (app, run) trace
            # is walked once for all of its configurations — the same
            # single-pass chunking the parallel workers use.
            for app, run, configs in parallel.plan_chunks(pending):
                self.run_detectors(app, run, configs)
            return None
        report = parallel.run_grid(
            pending,
            jobs=self.jobs,
            workload_seed=self.workload_seed,
            cache_dir=self.cache_dir,
            trace_cache_dir=self.trace_cache.directory,
            tape_cache_dir=self.tape_cache.directory,
            engine_path=self.engine_path,
        )
        for outcome in report.outcomes:
            self._outcomes[(outcome.app, outcome.run, outcome.detector)] = outcome
        self.metrics.merge_registry(report.metrics)
        return report

    # ------------------------------------------------------------- cache

    def _program_digest(self, app: str, run: int) -> int:
        """A stable digest of the run's program content.

        Folding this into the cache key makes cached verdicts self-invalidate
        whenever a workload generator (or the injection protocol) changes.
        """
        key = (app, run)
        digest = self._digests.get(key)
        if digest is None:
            program = self.program_for(app, run)
            parts: list[object] = [program.name]
            for thread in program.threads:
                parts.append(thread.thread_id)
                parts.append(len(thread.ops))
                # Sample ops densely enough to catch any generator change
                # without hashing hundreds of thousands of objects.
                parts.extend(
                    (op.kind.value, op.addr, op.size, op.cycles)
                    for op in thread.ops[::7]
                )
            digest = derive_seed(*parts)
            self._digests[key] = digest
        return digest

    def _cache_path(self, app: str, run: int, signature: str) -> Path | None:
        if self.cache_dir is None:
            return None
        digest = self._program_digest(app, run)
        stem = f"{app}_{run}_{derive_seed(signature, self.workload_seed, digest):016x}"
        return self.cache_dir / f"{stem}.json"

    def _cache_get(self, app: str, run: int, signature: str) -> RunOutcome | None:
        path = self._cache_path(app, run, signature)
        if path is None or not path.exists():
            return None
        data = json.loads(path.read_text())
        if data.get("signature") != signature:
            return None
        self.metrics.add("harness.verdict_cache_hits")
        return RunOutcome(
            detector=signature,
            app=app,
            run=run,
            detected=data["detected"],
            alarm_count=data["alarm_count"],
            dynamic_reports=data["dynamic_reports"],
            cycles=data["cycles"],
            detector_extra_cycles=data["detector_extra_cycles"],
        )

    def _cache_put(self, outcome: RunOutcome, signature: str) -> None:
        path = self._cache_path(outcome.app, outcome.run, signature)
        if path is None:
            return
        payload = json.dumps(
            {
                "signature": signature,
                "detected": outcome.detected,
                "alarm_count": outcome.alarm_count,
                "dynamic_reports": outcome.dynamic_reports,
                "cycles": outcome.cycles,
                "detector_extra_cycles": outcome.detector_extra_cycles,
            }
        )
        # Atomic write-then-rename so a crashed or parallel sweep never
        # leaves a truncated JSON file that poisons every later cache hit.
        atomic_write_text(path, payload)


@dataclass
class TableCell:
    """One "detected / alarms" cell of a paper-style table."""

    detected: int | None = None
    alarms: int | None = None
    extras: dict[str, float] = field(default_factory=dict)
