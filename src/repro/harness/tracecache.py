"""Process-safe on-disk cache of interleaved traces.

Interleaving is the second-most expensive phase of a grid cell (after
detection), and the Section 5.2 sweeps revisit the same (app, run)
execution under many detector configurations.  The serial harness memoises
traces in memory; worker processes of the parallel engine cannot share that
dict, so this module persists traces to disk where every worker — and every
later invocation — can reuse them.

Entries are the *columnar* binary encoding
(:meth:`~repro.common.coltrace.ColumnarTrace.to_bytes` — layout in
``docs/trace_format.md``) keyed by a content hash of (app, run, workload
seed, scheduler parameters, program digest, format version).  Folding the
*program digest* into the key makes entries self-invalidate whenever a
workload generator or the injection protocol changes, exactly like the
verdict cache.

Loads ``mmap`` the entry and cast the columns zero-copy out of the mapped
buffer: the packed arrays a batch-path engine session consumes come
straight off the page cache, and the loaded trace carries them pre-attached
(``Trace.columns()`` returns the mapped encoding without re-packing).

Writes use the write-then-:func:`os.replace` protocol (atomic on POSIX),
so concurrent workers racing to store the same trace are harmless: both
produce identical bytes and the rename is atomic, so readers only ever see
complete entries.  Loads tolerate truncated, corrupt, or stale files by
treating them as misses.  Pre-columnar caches (version 2 pickles and
older) are invalidated by the version bump — their keys no longer hash
equal, and :meth:`clear` sweeps both generations of files.
"""

from __future__ import annotations

import mmap
import struct
import weakref
from pathlib import Path

from repro.common.coltrace import ColumnarTrace
from repro.common.errors import ReproError
from repro.common.events import Trace
from repro.common.fsio import atomic_write_bytes
from repro.common.rng import derive_seed

#: Bumped whenever the trace layout or the interleaving semantics change,
#: so stale entries from older code self-invalidate.  2 -> 3: entries
#: switched from pickled Trace objects to the columnar binary encoding.
TRACE_CACHE_VERSION = 3

#: Bumped whenever the tape layout or the simulator's recorded behaviour
#: changes, so stale tape entries self-invalidate.
TAPE_CACHE_VERSION = 1


class TraceCache:
    """A directory of columnar trace files with atomic writes.

    A ``directory`` of ``None`` disables the cache: every lookup misses and
    every store is a no-op, which keeps call sites branch-free.
    """

    def __init__(self, directory: str | Path | None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        # Weak refs to every mmap-loaded ColumnarTrace this cache produced,
        # so close() can release their mappings deterministically.
        self._loaded: list = []

    @property
    def enabled(self) -> bool:
        """True when a backing directory is configured."""
        return self.directory is not None

    def path_for(self, app: str, run: int, *key_parts: object) -> Path | None:
        """The entry path for one (app, run) execution under ``key_parts``."""
        if self.directory is None:
            return None
        digest = derive_seed("trace", app, run, TRACE_CACHE_VERSION, *key_parts)
        return self.directory / f"trace_{app}_{run}_{digest:016x}.cols"

    def load(self, app: str, run: int, *key_parts: object) -> Trace | None:
        """The cached trace, or ``None`` on a miss (or unreadable entry).

        The returned trace carries the mmap-backed columnar encoding
        pre-attached, so ``trace.columns()`` is free and the batch engine
        path reads the packed arrays straight from the mapping.
        """
        path = self.path_for(app, run, *key_parts)
        if path is None:
            return None
        try:
            with path.open("rb") as fh:
                buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            cols = ColumnarTrace.from_bytes(buf)
            cols._source_path = path
            trace = cols.to_trace()
        except FileNotFoundError:
            self.misses += 1
            return None
        except (
            ReproError,
            ValueError,
            OSError,
            KeyError,
            TypeError,
            IndexError,
            struct.error,
        ):
            # Truncated or written by incompatible code: drop and rebuild.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        self._loaded.append(weakref.ref(cols))
        return trace

    def store(self, trace: Trace, app: str, run: int, *key_parts: object) -> None:
        """Persist ``trace``'s columnar encoding atomically (no-op when disabled)."""
        path = self.path_for(app, run, *key_parts)
        if path is None:
            return
        atomic_write_bytes(path, trace.columns().to_bytes())

    def clear(self) -> int:
        """Delete every entry (either generation); returns the number removed."""
        if self.directory is None:
            return 0
        removed = 0
        for pattern in ("trace_*.cols", "trace_*.pkl"):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def close(self) -> None:
        """Release every mmap this cache handed out (idempotent).

        Long sweeps visit thousands of cache entries; without an explicit
        close the mappings (and their file descriptors) live until garbage
        collection gets around to the trace objects.
        """
        loaded, self._loaded = self._loaded, []
        for ref in loaded:
            cols = ref()
            if cols is not None:
                cols.close()


class TapeCache:
    """A directory of serialized machine tapes with atomic writes.

    The persistent sibling of the in-memory tape memo
    (``ColumnarTrace._tapes``): entries are
    :meth:`~repro.engine.tape.MachineTape.to_bytes` blobs keyed by
    (columns content digest, machine-config signature, format version), so
    a (trace, machine config) pair is simulated **once ever** — every later
    process and session mmap-loads the recording with zero decode cost.

    A ``directory`` of ``None`` disables the cache (misses + no-op stores),
    keeping call sites branch-free.
    """

    def __init__(self, directory: str | Path | None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._loaded: list = []

    @property
    def enabled(self) -> bool:
        """True when a backing directory is configured."""
        return self.directory is not None

    def path_for(self, cols, machine_config) -> Path | None:
        """The entry path for one (columns, machine config) pair."""
        if self.directory is None:
            return None
        from repro.engine.tape import TAPE_FORMAT_VERSION, machine_signature

        digest = derive_seed(
            "tape",
            TAPE_CACHE_VERSION,
            TAPE_FORMAT_VERSION,
            cols.content_digest(),
            machine_signature(machine_config),
        )
        return self.directory / f"tape_{digest:016x}.tape"

    def load(self, cols, machine_config):
        """The cached tape, or ``None`` on a miss (or unreadable entry)."""
        path = self.path_for(cols, machine_config)
        if path is None:
            return None
        from repro.engine.tape import MachineTape

        try:
            with path.open("rb") as fh:
                buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            tape = MachineTape.from_bytes(buf, machine_config)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (
            ReproError,
            ValueError,
            OSError,
            KeyError,
            TypeError,
            IndexError,
            struct.error,
        ):
            # Truncated or written by incompatible code: drop and rebuild.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        self._loaded.append(weakref.ref(tape))
        return tape

    def store(self, cols, tape) -> Path | None:
        """Persist ``tape`` atomically; returns the entry path (or None)."""
        path = self.path_for(cols, tape.machine_config)
        if path is None:
            return None
        atomic_write_bytes(path, tape.to_bytes())
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        if self.directory is None:
            return 0
        removed = 0
        for path in self.directory.glob("tape_*.tape"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def close(self) -> None:
        """Release every mmap this cache handed out (idempotent)."""
        loaded, self._loaded = self._loaded, []
        for ref in loaded:
            tape = ref()
            if tape is not None:
                tape.close()
