"""Process-safe on-disk cache of interleaved traces.

Interleaving is the second-most expensive phase of a grid cell (after
detection), and the Section 5.2 sweeps revisit the same (app, run)
execution under many detector configurations.  The serial harness memoises
traces in memory; worker processes of the parallel engine cannot share that
dict, so this module persists traces to disk where every worker — and every
later invocation — can reuse them.

Entries are the *columnar* binary encoding
(:meth:`~repro.common.coltrace.ColumnarTrace.to_bytes` — layout in
``docs/trace_format.md``) keyed by a content hash of (app, run, workload
seed, scheduler parameters, program digest, format version).  Folding the
*program digest* into the key makes entries self-invalidate whenever a
workload generator or the injection protocol changes, exactly like the
verdict cache.

Loads ``mmap`` the entry and cast the columns zero-copy out of the mapped
buffer: the packed arrays a batch-path engine session consumes come
straight off the page cache, and the loaded trace carries them pre-attached
(``Trace.columns()`` returns the mapped encoding without re-packing).

Writes use the write-then-:func:`os.replace` protocol (atomic on POSIX),
so concurrent workers racing to store the same trace are harmless: both
produce identical bytes and the rename is atomic, so readers only ever see
complete entries.  Loads tolerate truncated, corrupt, or stale files by
treating them as misses.  Pre-columnar caches (version 2 pickles and
older) are invalidated by the version bump — their keys no longer hash
equal, and :meth:`clear` sweeps both generations of files.
"""

from __future__ import annotations

import mmap
import struct
from pathlib import Path

from repro.common.coltrace import ColumnarTrace
from repro.common.errors import ReproError
from repro.common.events import Trace
from repro.common.fsio import atomic_write_bytes
from repro.common.rng import derive_seed

#: Bumped whenever the trace layout or the interleaving semantics change,
#: so stale entries from older code self-invalidate.  2 -> 3: entries
#: switched from pickled Trace objects to the columnar binary encoding.
TRACE_CACHE_VERSION = 3


class TraceCache:
    """A directory of columnar trace files with atomic writes.

    A ``directory`` of ``None`` disables the cache: every lookup misses and
    every store is a no-op, which keeps call sites branch-free.
    """

    def __init__(self, directory: str | Path | None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        """True when a backing directory is configured."""
        return self.directory is not None

    def path_for(self, app: str, run: int, *key_parts: object) -> Path | None:
        """The entry path for one (app, run) execution under ``key_parts``."""
        if self.directory is None:
            return None
        digest = derive_seed("trace", app, run, TRACE_CACHE_VERSION, *key_parts)
        return self.directory / f"trace_{app}_{run}_{digest:016x}.cols"

    def load(self, app: str, run: int, *key_parts: object) -> Trace | None:
        """The cached trace, or ``None`` on a miss (or unreadable entry).

        The returned trace carries the mmap-backed columnar encoding
        pre-attached, so ``trace.columns()`` is free and the batch engine
        path reads the packed arrays straight from the mapping.
        """
        path = self.path_for(app, run, *key_parts)
        if path is None:
            return None
        try:
            with path.open("rb") as fh:
                buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            cols = ColumnarTrace.from_bytes(buf)
            trace = cols.to_trace()
        except FileNotFoundError:
            self.misses += 1
            return None
        except (
            ReproError,
            ValueError,
            OSError,
            KeyError,
            TypeError,
            IndexError,
            struct.error,
        ):
            # Truncated or written by incompatible code: drop and rebuild.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def store(self, trace: Trace, app: str, run: int, *key_parts: object) -> None:
        """Persist ``trace``'s columnar encoding atomically (no-op when disabled)."""
        path = self.path_for(app, run, *key_parts)
        if path is None:
            return
        atomic_write_bytes(path, trace.columns().to_bytes())

    def clear(self) -> int:
        """Delete every entry (either generation); returns the number removed."""
        if self.directory is None:
            return 0
        removed = 0
        for pattern in ("trace_*.cols", "trace_*.pkl"):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
