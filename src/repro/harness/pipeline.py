"""The observed end-to-end pipeline: build → interleave → detect → report.

:func:`run_pipeline` is the single entry point behind ``repro run`` and
``repro profile``: it executes one workload through one or more detectors
with the full observability bundle threaded through every layer, times each
phase with a :class:`~repro.obs.profile.PhaseProfiler`, attributes detector
activity to the detect phase via a stats snapshot/delta, and assembles the
machine-readable :class:`~repro.obs.runreport.RunReport`.

The detect phase is one :class:`~repro.engine.EngineSession` pass: every
requested detector's incremental core consumes the identical trace walk
(and compatible configurations share one simulated machine replay), so
``detector_key="hard-default,hb-default"`` costs far less than two
pipeline runs while producing the same per-detector results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.events import Trace
from repro.engine import EngineSession
from repro.harness.detectors import DetectorConfig
from repro.harness.experiment import score_detection
from repro.harness.tracestats import characterize
from repro.obs import Observability, PhaseProfiler, RunReport, cycles_entry
from repro.reporting import DetectionResult
from repro.threads.program import InjectedBug, ParallelProgram
from repro.threads.runtime import interleave
from repro.threads.scheduler import RandomScheduler
from repro.workloads.injection import inject_bug
from repro.workloads.registry import build_workload


@dataclass
class PipelineRun:
    """Everything one :func:`run_pipeline` call produced.

    ``result`` is the primary (first-requested) detector's outcome; when
    several detectors ran in the session, ``results`` holds all of them in
    request order (``results[0] is result``).
    """

    report: RunReport
    result: DetectionResult
    trace: Trace
    program: ParallelProgram
    profiler: PhaseProfiler
    bug: InjectedBug | None = None
    results: list[DetectionResult] = field(default_factory=list)


def _coerce_detector_keys(detector_key) -> list[DetectorConfig | str]:
    """Normalise ``detector_key`` into a non-empty list of configurations.

    Accepts a single key or :class:`DetectorConfig`, a comma-separated
    string of keys, or a sequence of either.
    """
    if isinstance(detector_key, str):
        keys = [part.strip() for part in detector_key.split(",") if part.strip()]
    elif isinstance(detector_key, DetectorConfig):
        keys = [detector_key]
    else:
        keys = list(detector_key)
    if not keys:
        raise ValueError(f"no detector named in {detector_key!r}")
    return keys


def _bug_entry(bug: InjectedBug | None) -> dict | None:
    """Ground-truth summary of the injected bug for the report."""
    if bug is None:
        return None
    return {
        "thread_id": bug.thread_id,
        "lock_addr": bug.lock_addr,
        "sites": [str(site) for site in bug.sites],
    }


def run_pipeline(
    app: str,
    detector_key: str = "hard-default",
    *,
    workload_seed: int = 0,
    schedule_seed: int = 0,
    bug_seed: int | None = None,
    obs: Observability | None = None,
    jobs: int = 1,
    engine_path: str = "auto",
    **detector_overrides,
) -> PipelineRun:
    """Run one workload through one detector with full observability.

    Args:
        app: workload name from :data:`repro.workloads.registry.WORKLOAD_NAMES`.
        detector_key: detector configuration key (or a
            :class:`~repro.harness.detectors.DetectorConfig`) for
            :func:`repro.harness.detectors.make_detector`; a
            comma-separated string or a sequence of keys runs every named
            detector in one engine pass over the same trace.
        workload_seed: seed of the workload generator.
        schedule_seed: seed of the interleaving scheduler.
        bug_seed: when given, inject a dynamic race with this seed before
            interleaving (the ``repro run --bug-seed`` protocol).
        obs: observability bundle; defaults to a fresh disabled bundle so
            the report still carries phases, verdict and cycle accounting.
        jobs: accepted so callers can thread one ``--jobs`` value through
            every entry point uniformly.  A single pipeline execution is
            one grid cell, so grid fan-out doesn't apply — but the detect
            phase's engine session receives the budget, so ``jobs > 1``
            lets the address-sharded path spread one large trace across
            worker processes (``engine_path="sharded"`` forces it).
        engine_path: the engine walk strategy (``"auto"``, ``"batch"``,
            ``"scalar"``, or ``"sharded"``), threaded into the detect
            phase's :class:`~repro.engine.EngineSession`.
        **detector_overrides: configuration overrides for the detector.

    Returns:
        A :class:`PipelineRun` whose ``report`` is JSON-serialisable.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if obs is None:
        obs = Observability()
    profiler = PhaseProfiler(emitter=obs.emitter)

    with profiler.phase("build", app=app, seed=workload_seed):
        program = build_workload(app, seed=workload_seed)
        bug = None
        if bug_seed is not None:
            program = inject_bug(program, seed=bug_seed)
            bug = program.injected_bug

    with profiler.phase("interleave") as rec:
        scheduler = RandomScheduler(seed=schedule_seed, max_burst=8)
        interleaved = interleave(program, scheduler, obs=obs)
        trace = interleaved.trace
        rec.extras["events"] = len(trace)
        rec.extras["context_switches"] = interleaved.context_switches

    with profiler.phase("characterize"):
        workload = characterize(trace).to_dict()

    configs = [
        DetectorConfig.coerce(key, **detector_overrides)
        for key in _coerce_detector_keys(detector_key)
    ]
    detector_label = ",".join(cfg.key for cfg in configs)
    with profiler.phase("detect", detector=detector_label) as rec:
        before = obs.metrics.snapshot()
        session = EngineSession(trace, obs=obs, path=engine_path, jobs=jobs)
        for cfg in configs:
            session.add_config(cfg)
        results = session.run()
        result = results[0]
        rec.counters_delta = result.stats.snapshot()
        for name, value in obs.metrics.delta(before).items():
            rec.counters_delta.setdefault(name, value)

    detect_wall = profiler.records[-1].wall_s
    throughput = {
        "trace_events": len(trace),
        "detect_wall_s": detect_wall,
        "events_per_s": len(trace) / detect_wall if detect_wall > 0 else 0.0,
    }
    emitted = getattr(obs.emitter, "counts", None)
    if emitted is not None and detect_wall > 0:
        throughput["trace_events_emitted"] = sum(emitted.values())
        throughput["emitted_per_s"] = sum(emitted.values()) / detect_wall

    verdict: dict = {
        "detected": score_detection(result, bug) if bug is not None else None,
        "dynamic_reports": result.reports.dynamic_count,
        "alarms": result.reports.alarm_count,
        "alarm_sites": sorted(str(site) for site in result.reports.sites()),
    }
    if len(results) > 1:
        verdict["detectors"] = {
            r.detector: {
                "detected": score_detection(r, bug) if bug is not None else None,
                "dynamic_reports": r.reports.dynamic_count,
                "alarms": r.reports.alarm_count,
            }
            for r in results
        }

    recorder = obs.telemetry
    if recorder is not None:
        # Per-phase wall time lands in the flame frames too, so a collapsed
        # dump shows the whole pipeline, not just the engine walk.
        for record in profiler.records:
            recorder.record_frame(("pipeline", record.name), record.wall_s)
    telemetry = recorder.snapshot() if recorder is not None else {}

    metrics = obs.metrics.snapshot_all()
    cache = {
        name: value
        for name, value in metrics["counters"].items()
        if name.startswith("harness.")
    }
    report = RunReport(
        app=app,
        detector=detector_label,
        workload_seed=workload_seed,
        schedule_seed=schedule_seed,
        bug_seed=bug_seed,
        bug=_bug_entry(bug),
        trace_events=len(trace),
        verdict=verdict,
        cycles=cycles_entry(result.cycles, result.detector_extra_cycles),
        workload=workload,
        phases=profiler.to_dicts(),
        counters=result.stats.snapshot(),
        histograms=metrics["histograms"],
        timers=metrics["timers"],
        event_counts=dict(emitted) if emitted is not None else {},
        throughput=throughput,
        cache=cache,
        telemetry=telemetry,
    )
    return PipelineRun(
        report=report,
        result=result,
        trace=trace,
        program=program,
        profiler=profiler,
        bug=bug,
        results=results,
    )
