"""Garbage collection for the on-disk result caches (``repro cache gc``).

The harness keeps three content-addressed cache families under one
directory (``results/cache`` by default):

* verdict JSON files (``<app>_<run>_<digest>.json``) at the top level;
* interleaved traces (``traces/trace_*.cols``, plus legacy ``.pkl``);
* recorded machine tapes (``tapes/tape_*.tape``).

All are self-invalidating — keys fold in format versions and program
digests, so stale entries simply stop being hit — which means nothing ever
deletes them and a long-lived checkout accumulates dead weight without
bound.  :func:`gc_cache` prunes by age and/or total size and reports what
it reclaimed; with no bounds given it just takes inventory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

#: The cache families a GC pass covers: (kind, subdirectory, glob).
_FAMILIES = (
    ("verdicts", "", "*.json"),
    ("traces", "traces", "trace_*.cols"),
    ("traces", "traces", "trace_*.pkl"),
    ("tapes", "tapes", "tape_*.tape"),
)


@dataclass
class CacheGcReport:
    """What one :func:`gc_cache` pass saw and did."""

    cache_dir: str
    dry_run: bool = False
    scanned_files: int = 0
    scanned_bytes: int = 0
    removed_files: int = 0
    removed_bytes: int = 0
    #: Per-family ``{kind: {"files": n, "bytes": n, "removed_files": n,
    #: "removed_bytes": n}}`` breakdown.
    kinds: dict = field(default_factory=dict)

    @property
    def kept_files(self) -> int:
        return self.scanned_files - self.removed_files

    @property
    def kept_bytes(self) -> int:
        return self.scanned_bytes - self.removed_bytes

    def to_dict(self) -> dict:
        """JSON-serialisable form (the ``repro cache gc --json`` payload)."""
        return {
            "cache_dir": self.cache_dir,
            "dry_run": self.dry_run,
            "scanned_files": self.scanned_files,
            "scanned_bytes": self.scanned_bytes,
            "removed_files": self.removed_files,
            "removed_bytes": self.removed_bytes,
            "kept_files": self.kept_files,
            "kept_bytes": self.kept_bytes,
            "kinds": self.kinds,
        }


def _human_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"


def render_gc_report(report: CacheGcReport) -> str:
    """The human-readable summary ``repro cache gc`` prints."""
    verb = "would remove" if report.dry_run else "removed"
    lines = [
        f"cache {report.cache_dir}: {report.scanned_files} files, "
        f"{_human_bytes(report.scanned_bytes)}"
    ]
    for kind, counts in sorted(report.kinds.items()):
        lines.append(
            f"  {kind}: {counts['files']} files, "
            f"{_human_bytes(counts['bytes'])}"
            + (
                f" ({verb} {counts['removed_files']}, "
                f"{_human_bytes(counts['removed_bytes'])})"
                if counts["removed_files"]
                else ""
            )
        )
    lines.append(
        f"{verb} {report.removed_files} files, "
        f"reclaimed {_human_bytes(report.removed_bytes)}; "
        f"kept {report.kept_files} files, {_human_bytes(report.kept_bytes)}"
    )
    return "\n".join(lines)


def gc_cache(
    cache_dir: str | Path,
    *,
    max_age_days: float | None = None,
    max_size_mb: float | None = None,
    dry_run: bool = False,
    now: float | None = None,
) -> CacheGcReport:
    """Prune the result caches under ``cache_dir``; report what happened.

    Entries older than ``max_age_days`` (by mtime) are removed first; if
    the survivors still exceed ``max_size_mb``, the oldest are removed
    until the total fits.  With neither bound set, nothing is deleted and
    the report is a pure inventory.  ``dry_run`` computes the same plan
    without unlinking; ``now`` (epoch seconds) pins the age reference for
    deterministic tests.
    """
    cache_dir = Path(cache_dir)
    report = CacheGcReport(cache_dir=str(cache_dir), dry_run=dry_run)
    entries: list[tuple[float, int, Path, str]] = []  # (mtime, size, path, kind)
    seen: set[Path] = set()
    for kind, subdir, pattern in _FAMILIES:
        directory = cache_dir / subdir if subdir else cache_dir
        if not directory.is_dir():
            continue
        for path in directory.glob(pattern):
            if path in seen:
                continue
            seen.add(path)
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path, kind))
            counts = report.kinds.setdefault(
                kind,
                {"files": 0, "bytes": 0, "removed_files": 0, "removed_bytes": 0},
            )
            counts["files"] += 1
            counts["bytes"] += stat.st_size
            report.scanned_files += 1
            report.scanned_bytes += stat.st_size

    doomed: list[tuple[float, int, Path, str]] = []
    survivors = sorted(entries)  # oldest first
    if max_age_days is not None:
        reference = time.time() if now is None else now
        cutoff = reference - max_age_days * 86400.0
        doomed = [entry for entry in survivors if entry[0] < cutoff]
        survivors = [entry for entry in survivors if entry[0] >= cutoff]
    if max_size_mb is not None:
        budget = int(max_size_mb * 1024 * 1024)
        total = sum(size for _, size, _, _ in survivors)
        index = 0
        while total > budget and index < len(survivors):
            entry = survivors[index]
            doomed.append(entry)
            total -= entry[1]
            index += 1
        survivors = survivors[index:]

    for _, size, path, kind in doomed:
        if not dry_run:
            path.unlink(missing_ok=True)
        report.removed_files += 1
        report.removed_bytes += size
        report.kinds[kind]["removed_files"] += 1
        report.kinds[kind]["removed_bytes"] += size
    return report
