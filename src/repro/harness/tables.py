"""Regeneration of every evaluation exhibit (Tables 2–6, Figure 8).

Each ``tableN``/``figure8`` function computes the paper exhibit's data from
an :class:`~repro.harness.experiment.ExperimentRunner`; each ``render_*``
function formats it with the paper's row/column structure so the benchmark
output can be compared side by side with the publication.  The absolute
numbers come from our synthetic workloads and functional simulator — the
*shapes* (who detects more, how alarms respond to granularity/L2/vector
size) are the reproduction targets; EXPERIMENTS.md records both.

Every exhibit function enumerates its full grid as
:class:`~repro.harness.parallel.GridCell` tasks and hands them to
:meth:`ExperimentRunner.prefetch` before assembling the result dict, so a
runner constructed with ``jobs > 1`` computes the grid across worker
processes while the assembly below — and therefore the rendered exhibit —
stays byte-for-byte what a serial run produces.
"""

from __future__ import annotations

from repro.common.config import (
    COHERENCE_KINDS,
    KB,
    MB,
    PAPER_BLOOM_SIZES,
    PAPER_L2_SIZES,
    SCALING_CORE_COUNTS,
)
from repro.harness.detectors import DetectorConfig, PAPER_DETECTORS
from repro.harness.experiment import CLEAN_RUN, ExperimentRunner
from repro.harness.parallel import GridCell
from repro.obs.runreport import overhead_entry
from repro.workloads.registry import SERVER_WORKLOADS, WORKLOAD_NAMES

#: Paper's Table 2 values, for side-by-side rendering:
#: app -> (hard_def_bugs, hard_def_fa, hard_ideal_bugs, hard_ideal_fa,
#:         hb_def_bugs, hb_def_fa, hb_ideal_bugs, hb_ideal_fa)
PAPER_TABLE2 = {
    "cholesky": (9, 91, 10, 38, 6, 37, 10, 13),
    "barnes": (10, 54, 10, 20, 10, 41, 10, 18),
    "fmm": (8, 73, 10, 40, 7, 70, 8, 36),
    "ocean": (8, 62, 10, 1, 8, 62, 10, 1),
    "water-nsquared": (9, 5, 10, 0, 5, 0, 6, 0),
    "raytrace": (10, 48, 10, 2, 8, 36, 8, 0),
}

#: Paper's Figure 8 overhead percentages (approximate bar readings).
PAPER_FIGURE8 = {
    "cholesky": 2.6,
    "barnes": 1.0,
    "fmm": 1.2,
    "ocean": 0.7,
    "water-nsquared": 0.1,
    "raytrace": 1.4,
}

#: Table 3 granularities (Section 5.2.1).
PAPER_TABLE3_GRANULARITIES = (4, 8, 16, 32)


def _gran(granularity: int) -> int | None:
    """Map the default granularity to "no override" so sweep cells that
    coincide with the default configuration reuse its cached verdicts."""
    return None if granularity == 32 else granularity


def _l2(size: int) -> int | None:
    """Same default-reuse mapping for the L2 capacity."""
    return None if size == 1 * MB else size


def _bits(bits: int) -> int | None:
    """Same default-reuse mapping for the BFVector width."""
    return None if bits == 16 else bits


def _scored_runs(runs: int) -> tuple[int, ...]:
    """Every run a "detected + alarms" exhibit column touches."""
    return (*range(runs), CLEAN_RUN)


def _prefetch(runner, cells_fn) -> None:
    """Prefetch an exhibit's grid through ``runner`` when it supports it.

    ``cells_fn`` maps the runner's per-app run count to the grid.
    Duck-typed so lightweight runner stand-ins (tests, notebooks) that only
    implement the counting methods keep working.
    """
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None:
        prefetch(cells_fn(getattr(runner, "runs", 10)))


def table2_cells(apps=WORKLOAD_NAMES, runs: int = 10) -> list[GridCell]:
    """The full Table 2 evaluation grid."""
    return [
        GridCell(app, run, DetectorConfig(key=key))
        for app in apps
        for key in PAPER_DETECTORS
        for run in _scored_runs(runs)
    ]


def table2(runner: ExperimentRunner, apps=WORKLOAD_NAMES) -> dict:
    """Table 2: bugs detected and false alarms for all four detectors."""
    _prefetch(runner, lambda runs: table2_cells(apps, runs=runs))
    data: dict[str, dict[str, dict[str, int]]] = {}
    for app in apps:
        row: dict[str, dict[str, int]] = {}
        for key in PAPER_DETECTORS:
            row[key] = {
                "detected": runner.detection_count(app, key),
                "alarms": runner.false_alarm_count(app, key),
            }
        data[app] = row
    return data


def render_table2(data: dict, runs: int = 10) -> str:
    """Format Table 2 with the paper's numbers alongside ours."""
    lines = [
        "Table 2: bugs detected / false alarms (ours | paper)",
        f"{'Application':<16}"
        f"{'HARD def':>22}{'HARD ideal':>22}{'HB def':>22}{'HB ideal':>22}",
    ]
    for app, row in data.items():
        paper = PAPER_TABLE2.get(app, (None,) * 8)
        cells = []
        for index, key in enumerate(PAPER_DETECTORS):
            ours = f"{row[key]['detected']}/{runs},{row[key]['alarms']}"
            ref_bugs, ref_fa = paper[2 * index], paper[2 * index + 1]
            ref = f"{ref_bugs}/{runs},{ref_fa}" if ref_bugs is not None else "?"
            cells.append(f"{ours:>10} |{ref:>9}")
        lines.append(f"{app:<16}" + "".join(f"{c:>22}" for c in cells))
    return "\n".join(lines)


def figure8_cells(apps=WORKLOAD_NAMES) -> list[GridCell]:
    """The Figure 8 grid: one race-free HARD run per application."""
    return [GridCell(app, CLEAN_RUN, DetectorConfig()) for app in apps]


def figure8(runner: ExperimentRunner, apps=WORKLOAD_NAMES) -> dict:
    """Figure 8: HARD execution overhead on the race-free run."""
    _prefetch(runner, lambda runs: figure8_cells(apps))
    data = {}
    for app in apps:
        outcome = runner.overhead(app)
        data[app] = overhead_entry(outcome.cycles, outcome.detector_extra_cycles)
    return data


def render_figure8(data: dict) -> str:
    """Format the overhead figure as a table with the paper's bars."""
    lines = [
        "Figure 8: HARD execution overhead (% of baseline execution time)",
        f"{'Application':<16}{'ours':>8}{'paper':>8}",
    ]
    for app, row in data.items():
        ref = PAPER_FIGURE8.get(app)
        ref_text = f"{ref:.1f}%" if ref is not None else "?"
        lines.append(f"{app:<16}{row['overhead_pct']:>7.2f}%{ref_text:>8}")
    return "\n".join(lines)


def _table3_detection_grans(key: str, granularities) -> tuple[int, ...]:
    """Which granularities get the 10-run detection sweep for ``key``."""
    if key == "hard-default":
        return (granularities[0], granularities[-1])
    return (granularities[-1],)


def table3_cells(
    apps=WORKLOAD_NAMES,
    granularities=PAPER_TABLE3_GRANULARITIES,
    runs: int = 10,
) -> list[GridCell]:
    """The full Table 3 evaluation grid."""
    cells = []
    for app in apps:
        for key in ("hard-default", "hb-default"):
            for g in _table3_detection_grans(key, granularities):
                config = DetectorConfig(key=key, granularity=_gran(g))
                cells.extend(GridCell(app, run, config) for run in range(runs))
            for g in granularities:
                config = DetectorConfig(key=key, granularity=_gran(g))
                cells.append(GridCell(app, CLEAN_RUN, config))
    return cells


def table3(
    runner: ExperimentRunner,
    apps=WORKLOAD_NAMES,
    granularities=PAPER_TABLE3_GRANULARITIES,
) -> dict:
    """Table 3: detection and false alarms vs metadata granularity.

    False alarms are swept over every granularity (race-free runs only).
    Detection is computed at the two extreme granularities (4 B and 32 B):
    the paper's table prints a single "4-32B" bug column because the counts
    are identical, and verifying the extremes covers the invariance claim
    without re-simulating 10 injected runs for the interior points.
    """
    _prefetch(runner, lambda runs: table3_cells(apps, granularities, runs=runs))
    data: dict[str, dict] = {}
    for app in apps:
        row = {"detected": {}, "alarms": {}}
        for key in ("hard-default", "hb-default"):
            detection_grans = _table3_detection_grans(key, granularities)
            row["detected"][key] = {
                g: runner.detection_count(app, key, granularity=_gran(g))
                for g in detection_grans
            }
            row["alarms"][key] = {
                g: runner.false_alarm_count(app, key, granularity=_gran(g))
                for g in granularities
            }
        data[app] = row
    return data


def render_table3(data: dict, granularities=PAPER_TABLE3_GRANULARITIES) -> str:
    """Format the granularity sensitivity table."""
    bug_grans = (granularities[0], granularities[-1])
    header = f"{'Application':<16}{'detector':<14}" + "".join(
        f"{'bugs@' + str(g) + 'B':>10}" for g in bug_grans
    ) + "".join(f"{'FA@' + str(g) + 'B':>9}" for g in granularities)
    lines = ["Table 3: sensitivity to candidate-set/LState granularity", header]
    for app, row in data.items():
        for key in ("hard-default", "hb-default"):
            detected = row["detected"][key]
            default_count = detected[granularities[-1]]
            bugs = "".join(
                f"{detected.get(g, default_count):>10}" for g in bug_grans
            )
            alarms = "".join(f"{row['alarms'][key][g]:>9}" for g in granularities)
            lines.append(f"{app:<16}{key:<14}{bugs}{alarms}")
    return "\n".join(lines)


def table4_5_cells(
    apps=WORKLOAD_NAMES, l2_sizes=PAPER_L2_SIZES, runs: int = 10
) -> list[GridCell]:
    """The full Tables 4/5 evaluation grid."""
    detection_sizes = (l2_sizes[0], l2_sizes[-1])
    cells = []
    for app in apps:
        for key in ("hard-default", "hb-default"):
            for size in detection_sizes:
                config = DetectorConfig(key=key, l2_size=_l2(size))
                cells.extend(GridCell(app, run, config) for run in range(runs))
            for size in l2_sizes:
                config = DetectorConfig(key=key, l2_size=_l2(size))
                cells.append(GridCell(app, CLEAN_RUN, config))
    return cells


def table4_and_5(
    runner: ExperimentRunner, apps=WORKLOAD_NAMES, l2_sizes=PAPER_L2_SIZES
) -> dict:
    """Tables 4 and 5: detection/false alarms vs L2 capacity.

    False alarms (race-free runs) are swept over all four capacities.
    Detection — 10 injected simulator runs per cell — is measured at the
    extreme capacities (128 KB and 1 MB), which carry the paper's finding:
    a small L2 displaces candidate sets and costs detections.
    """
    _prefetch(runner, lambda runs: table4_5_cells(apps, l2_sizes, runs=runs))
    data: dict[str, dict] = {}
    detection_sizes = (l2_sizes[0], l2_sizes[-1])
    for app in apps:
        row = {"detected": {}, "alarms": {}}
        for key in ("hard-default", "hb-default"):
            row["detected"][key] = {
                size: runner.detection_count(app, key, l2_size=_l2(size))
                for size in detection_sizes
            }
            row["alarms"][key] = {
                size: runner.false_alarm_count(app, key, l2_size=_l2(size))
                for size in l2_sizes
            }
        data[app] = row
    return data


def render_table4(data: dict, l2_sizes=PAPER_L2_SIZES) -> str:
    """Format the Table 4 view (bugs detected vs L2 size)."""
    sizes = (l2_sizes[0], l2_sizes[-1])
    return _render_l2_view(data, "detected", "Table 4: bugs detected vs L2 size", sizes)


def render_table5(data: dict, l2_sizes=PAPER_L2_SIZES) -> str:
    """Format the Table 5 view (false alarms vs L2 size)."""
    return _render_l2_view(data, "alarms", "Table 5: false alarms vs L2 size", l2_sizes)


def _render_l2_view(data: dict, field: str, title: str, l2_sizes) -> str:
    labels = [f"{size // KB}KB" for size in l2_sizes]
    header = f"{'Application':<16}{'detector':<14}" + "".join(
        f"{label:>9}" for label in labels
    )
    lines = [title, header]
    for app, row in data.items():
        for key in ("hard-default", "hb-default"):
            cells = "".join(f"{row[field][key][size]:>9}" for size in l2_sizes)
            lines.append(f"{app:<16}{key:<14}{cells}")
    return "\n".join(lines)


def table6_cells(
    apps=WORKLOAD_NAMES, vector_sizes=PAPER_BLOOM_SIZES, runs: int = 10
) -> list[GridCell]:
    """The full Table 6 evaluation grid."""
    cells = []
    for app in apps:
        for bits in vector_sizes:
            config = DetectorConfig(vector_bits=_bits(bits))
            cells.extend(GridCell(app, run, config) for run in _scored_runs(runs))
    return cells


def table6(
    runner: ExperimentRunner, apps=WORKLOAD_NAMES, vector_sizes=PAPER_BLOOM_SIZES
) -> dict:
    """Table 6: HARD with 16-bit vs 32-bit BFVectors."""
    _prefetch(runner, lambda runs: table6_cells(apps, vector_sizes, runs=runs))
    data: dict[str, dict] = {}
    for app in apps:
        data[app] = {
            "detected": {
                bits: runner.detection_count(app, "hard-default", vector_bits=_bits(bits))
                for bits in vector_sizes
            },
            "alarms": {
                bits: runner.false_alarm_count(app, "hard-default", vector_bits=_bits(bits))
                for bits in vector_sizes
            },
        }
    return data


def render_table6(data: dict, vector_sizes=PAPER_BLOOM_SIZES) -> str:
    """Format the BFVector-size sensitivity table."""
    header = f"{'Application':<16}" + "".join(
        f"{'bugs@' + str(b) + 'b':>10}" for b in vector_sizes
    ) + "".join(f"{'FA@' + str(b) + 'b':>9}" for b in vector_sizes)
    lines = ["Table 6: sensitivity to BFVector size", header]
    for app, row in data.items():
        bugs = "".join(f"{row['detected'][b]:>10}" for b in vector_sizes)
        alarms = "".join(f"{row['alarms'][b]:>9}" for b in vector_sizes)
        lines.append(f"{app:<16}{bugs}{alarms}")
    return "\n".join(lines)


#: The hybrid-comparison exhibit's columns: exact HB, the hybrid family
#: in lattice order, and the exact lockset (all at 4 B granularity —
#: every key here defaults to 4 B in :func:`make_detector`).
HYBRID_TABLE_DETECTORS = (
    "hb-ideal",
    "fasttrack",
    "acculock",
    "multilock-hb",
    "hard-ideal",
)


def hybrids_cells(apps=WORKLOAD_NAMES, runs: int = 10) -> list[GridCell]:
    """The full hybrid-comparison evaluation grid."""
    return [
        GridCell(app, run, DetectorConfig(key=key))
        for app in apps
        for key in HYBRID_TABLE_DETECTORS
        for run in _scored_runs(runs)
    ]


def hybrids(runner: ExperimentRunner, apps=WORKLOAD_NAMES) -> dict:
    """The hybrid family next to its exact endpoints (Table 2 shape).

    Bugs detected and clean-run alarms for exact happens-before, the
    three hybrid cores, and the exact lockset.  On every row the
    conformance lattice predicts monotone clean-run alarms across
    hb-ideal = fasttrack ≤ acculock ≤ multilock-hb; detection counts show
    the schedule-insensitivity payoff on the injected runs.
    """
    _prefetch(runner, lambda runs: hybrids_cells(apps, runs=runs))
    data: dict[str, dict[str, dict[str, int]]] = {}
    for app in apps:
        row: dict[str, dict[str, int]] = {}
        for key in HYBRID_TABLE_DETECTORS:
            row[key] = {
                "detected": runner.detection_count(app, key),
                "alarms": runner.false_alarm_count(app, key),
            }
        data[app] = row
    return data


#: Default application set of the scaling exhibit: two paper apps for
#: continuity plus the server-shaped many-core workloads.
SCALING_APPS = ("barnes", "ocean") + SERVER_WORKLOADS

#: Snooped address-phase bytes per bus transaction (the broadcast traffic
#: model's per-snooper cost: a 64-bit address/command packet).
SNOOP_ADDRESS_BYTES = 8


def _scaling_config(
    key: str, cores: int, fabric: str
) -> DetectorConfig:
    """One scaling cell's configuration (defaults map to None so cells that
    coincide with the default 4-core snoopy machine reuse its caches)."""
    return DetectorConfig(
        key=key,
        num_cores=None if cores == 4 else cores,
        coherence=None if fabric == "snoopy" else fabric,
    )


def scaling_cells(
    apps=SCALING_APPS,
    core_counts=SCALING_CORE_COUNTS,
    fabrics=COHERENCE_KINDS,
    detector: str = "hard-default",
) -> list[GridCell]:
    """The scaling grid: race-free runs over (app x cores x fabric)."""
    return [
        GridCell(app, CLEAN_RUN, _scaling_config(detector, cores, fabric))
        for app in apps
        for cores in core_counts
        for fabric in fabrics
    ]


def control_traffic(stats: dict, cores: int, fabric: str) -> dict:
    """Estimated control-message bytes of one run under one fabric.

    The two fabrics move the *same* data bytes (fills, writebacks,
    cache-to-cache transfers are identical decisions); what scales
    differently is the control plane:

    * **snoopy** — every bus transaction's address phase is observed by
      all ``cores - 1`` other snoopers, and metadata publications are
      broadcast to everyone: ``(address_bytes * transactions +
      metadata_bytes) * (cores - 1)``.
    * **directory** — control is explicit point-to-point messages
      (home-node lookups, exact-sharer invalidations, owner forwards,
      metadata updates), already byte-counted by the fabric in
      ``dir.bytes.control``; metadata travels once to the home node.

    The crossover of these two curves as ``cores`` grows is the exhibit's
    payoff: broadcast traffic scales with the core count, directory
    traffic with the *sharing degree*.
    """
    transactions = sum(
        count
        for key, count in stats.items()
        if key.startswith("bus.transactions.")
    )
    metadata_bytes = stats.get("bus.bytes.metadata", 0)
    if fabric == "snoopy":
        control = (SNOOP_ADDRESS_BYTES * transactions + metadata_bytes) * (
            cores - 1
        )
        messages = transactions
    else:
        control = stats.get("dir.bytes.control", 0) + metadata_bytes
        messages = sum(
            count
            for key, count in stats.items()
            if key.startswith("dir.messages.")
        )
    return {
        "bus_transactions": transactions,
        "metadata_bytes": metadata_bytes,
        "control_messages": messages,
        "control_bytes": control,
    }


def scaling(
    runner: ExperimentRunner,
    apps=SCALING_APPS,
    core_counts=SCALING_CORE_COUNTS,
    fabrics=COHERENCE_KINDS,
    detector: str = "hard-default",
) -> dict:
    """Broadcast-vs-directory traffic as the machine grows (the PR 10 study).

    For every (app, core count, fabric) cell, replay the race-free run on
    the parameterized machine and record simulated cycles, alarms, and the
    control-traffic estimate of :func:`control_traffic`.  Unlike the
    table exhibits this one needs the *stat counters* of each run (which
    :class:`RunOutcome` does not carry), so it evaluates one
    :class:`~repro.engine.EngineSession` per application directly over the
    runner's memoised trace — all (cores x fabric) configurations share
    the single trace walk.
    """
    from repro.engine import EngineSession

    data: dict[str, dict] = {}
    coords = [(cores, fabric) for cores in core_counts for fabric in fabrics]
    for app in apps:
        trace = runner.trace_for(app, CLEAN_RUN)
        session = EngineSession(
            trace,
            path=runner.engine_path,
            jobs=runner.engine_jobs,
            tape_cache=runner.tape_cache,
        )
        for cores, fabric in coords:
            session.add_config(_scaling_config(detector, cores, fabric))
        with runner.metrics.time("harness.detect"):
            results = session.run()
        row: dict[str, dict] = {}
        for (cores, fabric), result in zip(coords, results):
            stats = result.stats.snapshot()
            cell = control_traffic(stats, cores, fabric)
            cell["cycles"] = result.cycles
            cell["detector_extra_cycles"] = result.detector_extra_cycles
            cell["alarms"] = result.reports.alarm_count
            row.setdefault(str(cores), {})[fabric] = cell
        data[app] = row
    return data


def render_scaling(data: dict) -> str:
    """Format the scaling study: per-core-count traffic, both fabrics."""
    lines = [
        "Scaling: control traffic (KB) and cycles, snoopy vs directory",
        f"{'Application':<14}{'cores':>6}{'snoop KB':>10}{'dir KB':>10}"
        f"{'ratio':>7}{'winner':>11}{'snoop cyc':>12}{'dir cyc':>12}",
    ]
    for app, row in data.items():
        for cores, cells in row.items():
            snoop = cells["snoopy"]
            direct = cells["directory"]
            snoop_kb = snoop["control_bytes"] / KB
            dir_kb = direct["control_bytes"] / KB
            ratio = snoop_kb / dir_kb if dir_kb else float("inf")
            winner = "directory" if dir_kb < snoop_kb else "snoopy"
            lines.append(
                f"{app:<14}{cores:>6}{snoop_kb:>10.1f}{dir_kb:>10.1f}"
                f"{ratio:>7.2f}{winner:>11}{snoop['cycles']:>12}"
                f"{direct['cycles']:>12}"
            )
    lines.append(
        "model: snoopy control = (8 B address phase x transactions + "
        "metadata) x (cores - 1); directory control = counted "
        "point-to-point messages + metadata"
    )
    return "\n".join(lines)


def render_hybrids(data: dict, runs: int = 10) -> str:
    """Format the hybrid-family comparison table."""
    titles = ("HB ideal", "FastTrack", "AccuLock", "MultiLock", "Lockset")
    lines = [
        "Hybrid family: bugs detected / clean-run alarms (4 B granularity)",
        f"{'Application':<16}" + "".join(f"{t:>16}" for t in titles),
    ]
    for app, row in data.items():
        cells = []
        for key in HYBRID_TABLE_DETECTORS:
            cells.append(f"{row[key]['detected']}/{runs},{row[key]['alarms']}")
        lines.append(f"{app:<16}" + "".join(f"{c:>16}" for c in cells))
    lines.append(
        "lattice check: alarms must be monotone over "
        "hb-ideal = fasttrack <= acculock <= multilock-hb"
    )
    return "\n".join(lines)
