"""Experiment harness: the paper's evaluation protocol and exhibits."""

from repro.harness.attribution import Attribution, attribute_alarms, compare_attributions
from repro.harness.explain import AccessRecord, Explanation, explain_report
from repro.harness.detectors import (
    DETECTOR_KEYS,
    DetectorConfig,
    PAPER_DETECTORS,
    config_signature,
    make_detector,
)
from repro.harness.experiment import CLEAN_RUN, ExperimentRunner, RunOutcome, score_detection
from repro.harness.parallel import GridCell, GridReport, run_grid
from repro.harness.sweeps import SweepCell, SweepResult, sweep, sweep_cells
from repro.harness.tracecache import TraceCache
from repro.harness.tracestats import TraceStats, characterize
from repro.harness.tables import (
    PAPER_FIGURE8,
    PAPER_TABLE2,
    figure8,
    render_figure8,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    table2,
    table3,
    table4_and_5,
    table6,
)

__all__ = [
    "Attribution",
    "attribute_alarms",
    "compare_attributions",
    "AccessRecord",
    "Explanation",
    "explain_report",
    "DETECTOR_KEYS",
    "DetectorConfig",
    "PAPER_DETECTORS",
    "config_signature",
    "make_detector",
    "CLEAN_RUN",
    "ExperimentRunner",
    "RunOutcome",
    "score_detection",
    "GridCell",
    "GridReport",
    "run_grid",
    "TraceCache",
    "SweepCell",
    "SweepResult",
    "sweep",
    "sweep_cells",
    "TraceStats",
    "characterize",
    "PAPER_FIGURE8",
    "PAPER_TABLE2",
    "figure8",
    "render_figure8",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "table2",
    "table3",
    "table4_and_5",
    "table6",
]
