"""Generic parameter sweeps over detector configurations.

The paper's Tables 3–6 are fixed sweeps; this module exposes the same
machinery for arbitrary grids, so users can run their own sensitivity
studies (e.g. L2 sizes the paper didn't test, 8-bit Bloom vectors, the
broadcast/counter-register ablations across every application) with the
harness's caching and scoring.  A sweep enumerates its full grid up front
and prefetches it through the runner, so a runner built with ``jobs > 1``
evaluates the grid across worker processes with identical results.

Prefetch chunks the grid by (app, run) execution, and the runner scores
every configuration of a chunk in one single-pass
:class:`~repro.engine.EngineSession` walk of that execution's trace — a
sweep of N settings walks each trace once, not N times, while each cell's
outcome stays bit-for-bit what a standalone evaluation produces.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.harness.detectors import DetectorConfig
from repro.harness.experiment import CLEAN_RUN, ExperimentRunner
from repro.harness.parallel import GridCell


@dataclass(frozen=True)
class SweepCell:
    """One (application, parameter-value) measurement."""

    app: str
    value: object
    detected: int
    alarms: int


@dataclass
class SweepResult:
    """A full sweep: one cell per (app, value)."""

    detector: str
    parameter: str
    cells: list[SweepCell]
    runs: int = 10
    #: The runner's harness metrics snapshot (trace memo/cache counters,
    #: per-phase timers) — ``repro sweep --metrics`` prints it.
    metrics: dict = field(default_factory=dict, compare=False)
    _index: dict[tuple[str, object], SweepCell] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        # Index once at construction: lookups are O(1) instead of a list
        # scan, which matters when format() touches every (app, value) pair
        # of a large grid.
        self._index = {(cell.app, cell.value): cell for cell in self.cells}

    def cell(self, app: str, value: object) -> SweepCell:
        """The cell for one (app, value) pair."""
        try:
            return self._index[(app, value)]
        except KeyError:
            raise KeyError((app, value)) from None

    def series(self, app: str) -> list[SweepCell]:
        """All of one application's cells, in sweep order."""
        return [cell for cell in self.cells if cell.app == app]

    def format(self) -> str:
        """Render as a compact table (rows: apps; columns: values)."""
        values = sorted({cell.value for cell in self.cells}, key=repr)
        apps = sorted({cell.app for cell in self.cells})
        header = f"{'application':<16}" + "".join(
            f"{str(v):>14}" for v in values
        )
        lines = [
            f"sweep of {self.parameter} for {self.detector} "
            f"(cells: detected/{self.runs}, alarms)",
            header,
        ]
        for app in apps:
            row = ""
            for value in values:
                cell = self.cell(app, value)
                row += f"{f'{cell.detected}/{self.runs},{cell.alarms}':>14}"
            lines.append(f"{app:<16}{row}")
        return "\n".join(lines)


def sweep_cells(
    *,
    detector: str,
    parameter: str,
    values: list[object],
    apps: tuple[str, ...],
    runs: int = 10,
    include_detection: bool = True,
) -> list[GridCell]:
    """The full evaluation grid one :func:`sweep` call touches."""
    cells = []
    for app in apps:
        for value in values:
            config = DetectorConfig.coerce(detector, **{parameter: value})
            if include_detection:
                cells.extend(GridCell(app, run, config) for run in range(runs))
            cells.append(GridCell(app, CLEAN_RUN, config))
    return cells


def sweep(
    runner: ExperimentRunner,
    *,
    detector: str,
    parameter: str,
    values: list[object],
    apps: tuple[str, ...],
    include_detection: bool = True,
    obs=None,
) -> SweepResult:
    """Measure a detector across a parameter grid.

    ``parameter`` is any knob of
    :class:`~repro.harness.detectors.DetectorConfig` (``granularity``,
    ``l2_size``, ``vector_bits``, ``barrier_reset``, ``broadcast_updates``,
    ``use_counter_register``).

    An ``obs`` bundle gets one ``span`` event per assembled (app, value)
    cell; the returned result's ``metrics`` carries the runner's harness
    counters either way.
    """
    emitter = obs.emitter if obs is not None else None
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None:
        prefetch(
            sweep_cells(
                detector=detector,
                parameter=parameter,
                values=values,
                apps=apps,
                runs=getattr(runner, "runs", 10),
                include_detection=include_detection,
            )
        )
    cells = []
    for app in apps:
        for value in values:
            overrides = {parameter: value}
            with _cell_span(emitter, app, parameter, value):
                detected = (
                    runner.detection_count(app, detector, **overrides)
                    if include_detection
                    else 0
                )
                alarms = runner.false_alarm_count(app, detector, **overrides)
            cells.append(
                SweepCell(app=app, value=value, detected=detected, alarms=alarms)
            )
    runner_metrics = getattr(runner, "metrics", None)
    return SweepResult(
        detector=detector,
        parameter=parameter,
        cells=cells,
        runs=getattr(runner, "runs", 10),
        metrics=runner_metrics.snapshot_all() if runner_metrics is not None else {},
    )


def _cell_span(emitter, app: str, parameter: str, value: object):
    """A ``sweep.cell`` span over one cell assembly (no-op without emitter)."""
    if emitter is None or not emitter.enabled:
        return nullcontext()
    return emitter.span("sweep.cell", app=app, parameter=parameter, value=str(value))
