"""Generic parameter sweeps over detector configurations.

The paper's Tables 3–6 are fixed sweeps; this module exposes the same
machinery for arbitrary grids, so users can run their own sensitivity
studies (e.g. L2 sizes the paper didn't test, 8-bit Bloom vectors, the
broadcast/counter-register ablations across every application) with the
harness's caching and scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiment import ExperimentRunner


@dataclass(frozen=True)
class SweepCell:
    """One (application, parameter-value) measurement."""

    app: str
    value: object
    detected: int
    alarms: int


@dataclass
class SweepResult:
    """A full sweep: one cell per (app, value)."""

    detector: str
    parameter: str
    cells: list[SweepCell]

    def cell(self, app: str, value: object) -> SweepCell:
        """The cell for one (app, value) pair."""
        for cell in self.cells:
            if cell.app == app and cell.value == value:
                return cell
        raise KeyError((app, value))

    def series(self, app: str) -> list[SweepCell]:
        """All of one application's cells, in sweep order."""
        return [cell for cell in self.cells if cell.app == app]

    def format(self) -> str:
        """Render as a compact table (rows: apps; columns: values)."""
        values = sorted({cell.value for cell in self.cells}, key=repr)
        apps = sorted({cell.app for cell in self.cells})
        header = f"{'application':<16}" + "".join(
            f"{str(v):>14}" for v in values
        )
        lines = [
            f"sweep of {self.parameter} for {self.detector} "
            "(cells: detected/10, alarms)",
            header,
        ]
        for app in apps:
            row = ""
            for value in values:
                cell = self.cell(app, value)
                row += f"{f'{cell.detected}/10,{cell.alarms}':>14}"
            lines.append(f"{app:<16}{row}")
        return "\n".join(lines)


def sweep(
    runner: ExperimentRunner,
    *,
    detector: str,
    parameter: str,
    values: list[object],
    apps: tuple[str, ...],
    include_detection: bool = True,
) -> SweepResult:
    """Measure a detector across a parameter grid.

    ``parameter`` is any keyword accepted by
    :func:`repro.harness.detectors.make_detector` (``granularity``,
    ``l2_size``, ``vector_bits``, ``barrier_reset``, ``broadcast_updates``,
    ``use_counter_register``).
    """
    cells = []
    for app in apps:
        for value in values:
            overrides = {parameter: value}
            detected = (
                runner.detection_count(app, detector, **overrides)
                if include_detection
                else 0
            )
            alarms = runner.false_alarm_count(app, detector, **overrides)
            cells.append(
                SweepCell(app=app, value=value, detected=detected, alarms=alarms)
            )
    return SweepResult(detector=detector, parameter=parameter, cells=cells)
