"""Workload characterization: the numbers behind a trace's behaviour.

The evaluation's dynamics hinge on a handful of trace properties — lock
density, how many threads share each line, working-set size vs the L2,
synchronization mix.  This module measures them, both to audit that the
synthetic SPLASH-2 stand-ins have the intended signatures and to help
users understand why a detector behaves as it does on their own traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.common.addresses import line_address
from repro.common.events import OpKind, Trace


@dataclass
class TraceStats:
    """Aggregate characterization of one interleaved trace."""

    total_events: int = 0
    memory_accesses: int = 0
    writes: int = 0
    lock_acquires: int = 0
    lock_releases: int = 0
    barrier_waits: int = 0
    compute_events: int = 0
    distinct_lines: int = 0
    distinct_locks: int = 0
    shared_lines: int = 0
    write_shared_lines: int = 0
    max_lock_nesting: int = 0
    accesses_under_lock: int = 0
    sites: int = 0
    threads: int = 0
    sharers_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def lock_density(self) -> float:
        """Lock acquires per memory access (SPLASH lock apps: ~0.01-0.2)."""
        if not self.memory_accesses:
            return 0.0
        return self.lock_acquires / self.memory_accesses

    @property
    def footprint_bytes(self) -> int:
        """Working-set size (distinct 32 B lines touched)."""
        return self.distinct_lines * 32

    @property
    def write_ratio(self) -> float:
        """Writes per memory access."""
        if not self.memory_accesses:
            return 0.0
        return self.writes / self.memory_accesses

    def to_dict(self) -> dict:
        """JSON-serialisable characterization (embedded in RunReport)."""
        return {
            "total_events": self.total_events,
            "memory_accesses": self.memory_accesses,
            "writes": self.writes,
            "write_ratio": self.write_ratio,
            "lock_acquires": self.lock_acquires,
            "lock_releases": self.lock_releases,
            "lock_density": self.lock_density,
            "barrier_waits": self.barrier_waits,
            "compute_events": self.compute_events,
            "distinct_lines": self.distinct_lines,
            "footprint_bytes": self.footprint_bytes,
            "distinct_locks": self.distinct_locks,
            "shared_lines": self.shared_lines,
            "write_shared_lines": self.write_shared_lines,
            "max_lock_nesting": self.max_lock_nesting,
            "accesses_under_lock": self.accesses_under_lock,
            "sites": self.sites,
            "threads": self.threads,
            "sharers_histogram": {
                str(k): v for k, v in self.sharers_histogram.items()
            },
        }

    def format(self) -> str:
        """A compact characterization report."""
        lines = [
            f"events            {self.total_events:>10,}",
            f"memory accesses   {self.memory_accesses:>10,} "
            f"({100 * self.write_ratio:.0f}% writes, "
            f"{100 * self.accesses_under_lock / max(self.memory_accesses, 1):.0f}% under lock)",
            f"lock acquires     {self.lock_acquires:>10,} "
            f"(density {self.lock_density:.3f}/access, "
            f"{self.distinct_locks} locks, nesting <= {self.max_lock_nesting})",
            f"barrier waits     {self.barrier_waits:>10,}",
            f"footprint         {self.footprint_bytes / 1024:>10,.0f} KB "
            f"({self.distinct_lines:,} lines)",
            f"shared lines      {self.shared_lines:>10,} "
            f"({self.write_shared_lines:,} write-shared)",
        ]
        return "\n".join(lines)


class TraceStatsCore:
    """Incremental trace characterization (an engine-compatible core).

    Trace-only: it never touches a machine, so an
    :class:`~repro.engine.EngineSession` can run it alongside any detector
    cores on the same walk — the ``repro stats`` verb and the pipeline's
    characterize phase both feed it this way.  ``finish`` returns a
    :class:`TraceStats` (not a DetectionResult).
    """

    machine_config = None
    name = "trace-stats"

    def __init__(self, line_size: int = 32):
        self.line_size = line_size

    def begin(self, trace: Trace, obs=None, machine=None) -> None:
        """Allocate the pass state; ``machine`` is ignored (trace-only)."""
        self.stats = TraceStats(threads=trace.num_threads)
        self._line_readers: dict[int, set[int]] = {}
        self._line_writers: dict[int, set[int]] = {}
        self._locks_seen: set[int] = set()
        self._sites: set = set()
        self._nesting: Counter[int] = Counter()

    def step(self, event) -> None:
        """Fold one trace event into the characterization."""
        op = event.op
        stats = self.stats
        stats.total_events += 1
        if op.kind is OpKind.COMPUTE:
            stats.compute_events += 1
        elif op.kind is OpKind.LOCK:
            stats.lock_acquires += 1
            self._locks_seen.add(op.addr)
            self._nesting[event.thread_id] += 1
            stats.max_lock_nesting = max(
                stats.max_lock_nesting, self._nesting[event.thread_id]
            )
        elif op.kind is OpKind.UNLOCK:
            stats.lock_releases += 1
            self._nesting[event.thread_id] -= 1
        elif op.kind is OpKind.BARRIER:
            stats.barrier_waits += 1
        else:
            stats.memory_accesses += 1
            if op.is_write:
                stats.writes += 1
            if self._nesting[event.thread_id] > 0:
                stats.accesses_under_lock += 1
            if op.site is not None:
                self._sites.add(op.site)
            line = line_address(op.addr, self.line_size)
            if op.is_write:
                self._line_writers.setdefault(line, set()).add(event.thread_id)
            else:
                self._line_readers.setdefault(line, set()).add(event.thread_id)

    # ------------------------------------------------------------- batch path
    # Columnar kernel: same folds over the packed columns, no event objects.

    def begin_batch(self, cols, tape=None) -> None:
        """Allocate batch-pass state over a columnar trace (tape unused)."""
        self.stats = TraceStats(threads=cols.num_threads)
        self._line_readers = {}
        self._line_writers = {}
        self._locks_seen = set()
        self._sites = set()
        self._nesting = Counter()

    def step_batch(self, cols, lo: int, hi: int) -> None:
        """Fold events ``[lo, hi)`` of ``cols`` into the characterization."""
        rows = cols.rows()
        sites = cols.sites
        stats = self.stats
        line_mask = ~(self.line_size - 1)
        line_readers = self._line_readers
        line_writers = self._line_writers
        locks_seen = self._locks_seen
        sites_seen = self._sites
        nesting = self._nesting
        stats.total_events += hi - lo
        for i in range(lo, hi):
            kind, tid, addr, size, sid = rows[i]
            if kind <= 1:  # READ / WRITE
                stats.memory_accesses += 1
                if nesting[tid] > 0:
                    stats.accesses_under_lock += 1
                if sid >= 0:
                    sites_seen.add(sites[sid])
                line = addr & line_mask
                if kind == 1:
                    stats.writes += 1
                    sharers = line_writers.get(line)
                    if sharers is None:
                        sharers = line_writers[line] = set()
                else:
                    sharers = line_readers.get(line)
                    if sharers is None:
                        sharers = line_readers[line] = set()
                sharers.add(tid)
            elif kind == 2:  # LOCK
                stats.lock_acquires += 1
                locks_seen.add(addr)
                nesting[tid] += 1
                if nesting[tid] > stats.max_lock_nesting:
                    stats.max_lock_nesting = nesting[tid]
            elif kind == 3:  # UNLOCK
                stats.lock_releases += 1
                nesting[tid] -= 1
            elif kind == 4:  # BARRIER
                stats.barrier_waits += 1
            else:  # COMPUTE
                stats.compute_events += 1

    def finish_batch(self) -> TraceStats:
        """Aggregate the batch pass (same reduction as :meth:`finish`)."""
        return self.finish()

    def finish(self) -> TraceStats:
        """Aggregate the per-line sharing structure into the final stats."""
        stats = self.stats
        line_readers = self._line_readers
        line_writers = self._line_writers
        all_lines = set(line_readers) | set(line_writers)
        stats.distinct_lines = len(all_lines)
        stats.distinct_locks = len(self._locks_seen)
        stats.sites = len(self._sites)
        histogram: Counter[int] = Counter()
        for line in all_lines:
            sharers = line_readers.get(line, set()) | line_writers.get(line, set())
            histogram[len(sharers)] += 1
            if len(sharers) > 1:
                stats.shared_lines += 1
                writers = line_writers.get(line, set())
                if writers and (len(writers) > 1 or sharers - writers):
                    stats.write_shared_lines += 1
        stats.sharers_histogram = dict(sorted(histogram.items()))
        return stats


def characterize(trace: Trace, line_size: int = 32) -> TraceStats:
    """Measure the characterization statistics of ``trace``.

    A thin shim over :class:`TraceStatsCore` — one incremental pass,
    exactly what an engine session feeding the core would compute.
    """
    core = TraceStatsCore(line_size)
    core.begin(trace)
    step = core.step
    for event in trace:
        step(event)
    return core.finish()
