"""Named detector configurations used throughout the evaluation.

The paper compares four configurations (Table 2):

* ``hard-default`` — HARD on the Table 1 machine: 16-bit BFVector, 32 B
  (line) granularity, candidate sets cached only;
* ``hard-ideal`` — the ideal lockset: exact sets, 4 B granularity,
  unbounded storage;
* ``hb-default`` — happens-before with line-granularity timestamps kept in
  the cache;
* ``hb-ideal`` — happens-before at 4 B granularity with unbounded storage.

:func:`make_detector` builds any of them, with the sensitivity-study knobs
(granularity, L2 size, BFVector width) as keyword overrides.
"""

from __future__ import annotations

from repro.common.config import HappensBeforeConfig, HardConfig, MachineConfig
from repro.common.errors import HarnessError
from repro.core.detector import HardDetector
from repro.core.hybrid import HybridDetector
from repro.hb.detector import HappensBeforeDetector
from repro.hb.ideal import IdealHappensBeforeDetector
from repro.lockset.exact import IdealLocksetDetector
from repro.reporting import Detector

#: The four Table 2 configurations, in the paper's column order.
PAPER_DETECTORS = ("hard-default", "hard-ideal", "hb-default", "hb-ideal")


def make_detector(
    key: str,
    *,
    granularity: int | None = None,
    l2_size: int | None = None,
    vector_bits: int | None = None,
    barrier_reset: bool = True,
    broadcast_updates: bool = True,
    use_counter_register: bool = True,
) -> Detector:
    """Build a detector by configuration name.

    Keyword overrides apply where meaningful: ``granularity`` to every
    detector, ``l2_size`` to the cache-resident (default) ones,
    ``vector_bits`` and the ablation switches to HARD only.
    """
    if key == "hard-default":
        machine = MachineConfig()
        if l2_size is not None:
            machine = machine.with_l2_size(l2_size)
        config = HardConfig(
            barrier_reset=barrier_reset,
            broadcast_updates=broadcast_updates,
            use_counter_register=use_counter_register,
        )
        if granularity is not None:
            config = config.with_granularity(granularity)
        if vector_bits is not None:
            config = config.with_vector_bits(vector_bits)
        return HardDetector(machine, config, name=key)
    if key == "hard-ideal":
        return IdealLocksetDetector(
            granularity=granularity or 4, barrier_reset=barrier_reset, name=key
        )
    if key == "hb-default":
        machine = MachineConfig()
        if l2_size is not None:
            machine = machine.with_l2_size(l2_size)
        config = HappensBeforeConfig()
        if granularity is not None:
            config = config.with_granularity(granularity)
        return HappensBeforeDetector(machine, config, name=key)
    if key == "hb-ideal":
        return IdealHappensBeforeDetector(granularity=granularity or 4, name=key)
    if key == "hybrid":
        return HybridDetector(granularity=granularity or 4, name=key)
    raise HarnessError(f"unknown detector key {key!r}")


#: Bumped whenever detector semantics or cost models change, so disk-cached
#: verdicts from older code self-invalidate.
MODEL_VERSION = 2


def config_signature(key: str, **overrides: object) -> str:
    """A stable string identifying a detector configuration (cache key)."""
    parts = [key, f"v{MODEL_VERSION}"]
    for name in sorted(overrides):
        value = overrides[name]
        if value is not None:
            parts.append(f"{name}={value}")
    return ";".join(parts)
