"""Named detector configurations used throughout the evaluation.

The paper compares four configurations (Table 2):

* ``hard-default`` — HARD on the Table 1 machine: 16-bit BFVector, 32 B
  (line) granularity, candidate sets cached only;
* ``hard-ideal`` — the ideal lockset: exact sets, 4 B granularity,
  unbounded storage;
* ``hb-default`` — happens-before with line-granularity timestamps kept in
  the cache;
* ``hb-ideal`` — happens-before at 4 B granularity with unbounded storage.

The library adds three more: ``hybrid`` (lockset+HB extension),
``hard-directory`` (the directory-based variant of Section 6) and
``software`` (the Eraser-style software lockset with its cost model) —
plus the post-HARD hybrid family: ``fasttrack`` (epoch-optimized exact
happens-before), ``acculock`` (epoch + one lockset per location) and
``multilock-hb`` (per-location reader/writer lockset sets).  The
conformance harness (:mod:`repro.hybrids.conformance`) pins their
lattice: fasttrack ≡ hb-ideal ⊆ acculock ⊆ multilock-hb ⊆ strict
lockset.

:class:`DetectorConfig` is the typed construction protocol: one frozen,
hashable, picklable dataclass captures a detector key plus every
sensitivity-study knob, and :func:`make_detector` /
:func:`config_signature` accept either the dataclass or the legacy
``key, **overrides`` form.  Every detector built here satisfies the
:class:`~repro.reporting.Detector` protocol —
``run(trace, obs) -> DetectionResult``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.common.config import HappensBeforeConfig, HardConfig, MachineConfig
from repro.common.errors import HarnessError
from repro.core.detector import HardDetector
from repro.core.directory_detector import DirectoryHardDetector
from repro.core.hybrid import HybridDetector
from repro.hb.detector import HappensBeforeDetector
from repro.hb.fasttrack import FastTrackDetector
from repro.hb.ideal import IdealHappensBeforeDetector
from repro.hybrids.acculock import AccuLockDetector
from repro.hybrids.multilock import MultiLockHBDetector
from repro.lockset.exact import IdealLocksetDetector
from repro.lockset.software import SoftwareLocksetDetector
from repro.reporting import Detector

#: The four Table 2 configurations, in the paper's column order.
PAPER_DETECTORS = ("hard-default", "hard-ideal", "hb-default", "hb-ideal")

#: The post-HARD hybrid family plus its exact-HB baseline (PR 8).
HYBRID_DETECTORS = ("fasttrack", "acculock", "multilock-hb")

#: Every key :func:`make_detector` accepts.
DETECTOR_KEYS = (
    *PAPER_DETECTORS,
    "hybrid",
    "hard-directory",
    "software",
    *HYBRID_DETECTORS,
)


@dataclass(frozen=True)
class DetectorConfig:
    """One detector configuration: a key plus the sensitivity-study knobs.

    Frozen (hashable, picklable) so a configuration can key caches and
    cross process boundaries unchanged — the parallel grid engine ships
    these to worker processes.  ``None`` means "the key's default", which
    keeps cache signatures identical between an explicit default and no
    override at all.
    """

    key: str = "hard-default"
    granularity: int | None = None
    l2_size: int | None = None
    vector_bits: int | None = None
    barrier_reset: bool = True
    broadcast_updates: bool = True
    use_counter_register: bool = True
    num_cores: int | None = None
    coherence: str | None = None

    def overrides(self) -> dict[str, object]:
        """The non-default knobs as ``make_detector`` keyword arguments."""
        out: dict[str, object] = {}
        for spec in fields(self):
            if spec.name == "key":
                continue
            value = getattr(self, spec.name)
            if value != spec.default:
                out[spec.name] = value
        return out

    def with_overrides(self, **overrides: object) -> "DetectorConfig":
        """A copy with the given knobs replaced."""
        return replace(self, **overrides)

    @classmethod
    def coerce(cls, config: "DetectorConfig | str", **overrides: object) -> "DetectorConfig":
        """Normalise either calling convention into one dataclass.

        Accepts a ready :class:`DetectorConfig` (no overrides allowed — the
        dataclass already carries every knob) or a key string with the
        legacy loose keyword overrides.
        """
        if isinstance(config, cls):
            if overrides:
                raise HarnessError(
                    "pass knobs inside DetectorConfig, not as extra overrides"
                )
            return config
        kwargs = {k: v for k, v in overrides.items() if v is not None}
        return cls(key=config, **kwargs)


def _machine_config(cfg: DetectorConfig) -> MachineConfig:
    """The simulated machine a cache-resident detector runs on.

    ``num_cores`` and ``coherence`` are the PR-10 scale-out axes: folding
    them here means every machine-backed detector (and therefore the tape
    recorder, whose cache key is the machine config's repr) sees them
    uniformly, and leaving them ``None`` reproduces the Table 1 platform
    byte for byte.
    """
    machine = MachineConfig()
    if cfg.num_cores is not None or cfg.coherence is not None:
        machine = machine.with_cores(
            cfg.num_cores if cfg.num_cores is not None else machine.num_cores,
            cfg.coherence,
        )
    if cfg.l2_size is not None:
        machine = machine.with_l2_size(cfg.l2_size)
    return machine


def make_detector(
    config: DetectorConfig | str = "hard-default", **overrides: object
) -> Detector:
    """Build a detector from a :class:`DetectorConfig` (or key + overrides).

    Knobs apply where meaningful: ``granularity`` to every detector,
    ``l2_size``, ``num_cores`` and ``coherence`` to the cache-resident
    (machine-backed) ones, ``vector_bits`` and the ablation switches to
    HARD only.
    """
    cfg = DetectorConfig.coerce(config, **overrides)
    key = cfg.key
    if key in ("hard-default", "hard-directory"):
        machine = _machine_config(cfg)
        hard = HardConfig(
            barrier_reset=cfg.barrier_reset,
            broadcast_updates=cfg.broadcast_updates,
            use_counter_register=cfg.use_counter_register,
        )
        if cfg.granularity is not None:
            hard = hard.with_granularity(cfg.granularity)
        if cfg.vector_bits is not None:
            hard = hard.with_vector_bits(cfg.vector_bits)
        if key == "hard-directory":
            return DirectoryHardDetector(machine, hard, name=key)
        return HardDetector(machine, hard, name=key)
    if key == "hard-ideal":
        return IdealLocksetDetector(
            granularity=cfg.granularity or 4,
            barrier_reset=cfg.barrier_reset,
            name=key,
        )
    if key == "hb-default":
        machine = _machine_config(cfg)
        hb = HappensBeforeConfig()
        if cfg.granularity is not None:
            hb = hb.with_granularity(cfg.granularity)
        return HappensBeforeDetector(machine, hb, name=key)
    if key == "hb-ideal":
        return IdealHappensBeforeDetector(granularity=cfg.granularity or 4, name=key)
    if key == "hybrid":
        return HybridDetector(granularity=cfg.granularity or 4, name=key)
    if key == "fasttrack":
        return FastTrackDetector(granularity=cfg.granularity or 4, name=key)
    if key == "acculock":
        return AccuLockDetector(
            granularity=cfg.granularity or 4,
            barrier_reset=cfg.barrier_reset,
            name=key,
        )
    if key == "multilock-hb":
        return MultiLockHBDetector(
            granularity=cfg.granularity or 4,
            barrier_reset=cfg.barrier_reset,
            name=key,
        )
    if key == "software":
        machine = _machine_config(cfg)
        return SoftwareLocksetDetector(
            machine,
            granularity=cfg.granularity or 4,
            barrier_reset=cfg.barrier_reset,
            name=key,
        )
    raise HarnessError(
        f"unknown detector key {key!r}; expected one of {DETECTOR_KEYS}"
    )


#: Bumped whenever detector semantics or cost models change, so disk-cached
#: verdicts from older code self-invalidate.
MODEL_VERSION = 2


def config_signature(
    config: DetectorConfig | str, **overrides: object
) -> str:
    """A stable string identifying a detector configuration (cache key).

    Signatures are intentionally unchanged from the loose-kwargs era: a
    :class:`DetectorConfig` produces exactly the signature its equivalent
    ``key, **overrides`` call always did, so existing disk caches stay
    valid.
    """
    cfg = DetectorConfig.coerce(config, **overrides)
    parts = [cfg.key, f"v{MODEL_VERSION}"]
    knobs = cfg.overrides()
    for name in sorted(knobs):
        parts.append(f"{name}={knobs[name]}")
    return ";".join(parts)
