"""Race-report explanation: reconstruct the story behind one report.

A lockset report says "the candidate set went empty here" — useful, but a
developer wants the *history*: who touched this data, under which locks,
and where the common lock was lost.  Given the trace a report came from,
:func:`explain_report` rebuilds exactly that, the way a HARD-equipped
debugger would walk the access history after a hardware trap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addresses import chunk_address, spanned_chunks
from repro.common.events import OpKind, Trace
from repro.reporting import RaceReport


@dataclass(frozen=True)
class AccessRecord:
    """One access to the reported data, with the locks held at the time."""

    seq: int
    thread_id: int
    addr: int
    is_write: bool
    site: str
    locks_held: tuple[int, ...]

    def format(self) -> str:
        kind = "write" if self.is_write else "read"
        if self.locks_held:
            locks = ", ".join(f"0x{lk:x}" for lk in self.locks_held)
            held = f"holding {{{locks}}}"
        else:
            held = "holding no locks"
        return f"[{self.seq:>7}] t{self.thread_id} {kind:<5} 0x{self.addr:x} {held}  @{self.site}"


@dataclass
class Explanation:
    """The reconstructed history of a reported race."""

    report: RaceReport
    chunk_addr: int
    history: list[AccessRecord] = field(default_factory=list)
    common_locks_over_time: list[frozenset[int]] = field(default_factory=list)

    @property
    def threads_involved(self) -> frozenset[int]:
        """Every thread that touched the reported chunk."""
        return frozenset(rec.thread_id for rec in self.history)

    @property
    def first_unprotected(self) -> AccessRecord | None:
        """The earliest access after which no common lock remained."""
        for record, common in zip(self.history, self.common_locks_over_time):
            if not common:
                return record
        return None

    def format(self, max_entries: int = 12) -> str:
        lines = [
            f"report: {self.report}",
            f"access history of chunk 0x{self.chunk_addr:x} "
            f"({len(self.history)} accesses by threads "
            f"{sorted(self.threads_involved)}):",
        ]
        shown = self.history[-max_entries:]
        if len(self.history) > len(shown):
            lines.append(f"  ... {len(self.history) - len(shown)} earlier accesses ...")
        lines.extend("  " + rec.format() for rec in shown)
        culprit = self.first_unprotected
        if culprit is not None:
            lines.append(
                f"locking discipline broken at seq {culprit.seq}: after this "
                f"access no single lock protects the data"
            )
        return "\n".join(lines)


def explain_report(
    trace: Trace, report: RaceReport, *, granularity: int = 4
) -> Explanation:
    """Reconstruct the access/lock history behind ``report``.

    Walks the trace up to the reporting access, collecting every access to
    the report's first chunk together with the accessor's lock set, and the
    evolving set of *common* locks (None-start exact lockset semantics).
    """
    chunk = chunk_address(report.addr, granularity)
    explanation = Explanation(report=report, chunk_addr=chunk)
    held: dict[int, list[int]] = {}
    common: frozenset[int] | None = None  # None = all possible locks

    for event in trace:
        if event.seq > report.seq:
            break
        op = event.op
        locks = held.setdefault(event.thread_id, [])
        if op.kind is OpKind.LOCK:
            locks.append(op.addr)
        elif op.kind is OpKind.UNLOCK:
            if op.addr in locks:
                locks.remove(op.addr)
        elif op.is_memory_access:
            touched = any(
                chunk_address(c, granularity) == chunk
                for c in spanned_chunks(op.addr, op.size, granularity)
            )
            if not touched:
                continue
            record = AccessRecord(
                seq=event.seq,
                thread_id=event.thread_id,
                addr=op.addr,
                is_write=op.is_write,
                site=str(op.site) if op.site else "?",
                locks_held=tuple(locks),
            )
            explanation.history.append(record)
            if common is None:
                common = frozenset(locks)
            else:
                common = common & frozenset(locks)
            explanation.common_locks_over_time.append(common)
    return explanation
