"""Alarm attribution: group a detector's alarms by workload pattern.

The synthetic workloads name every source site ``<pattern>.<role>[#k]``
(e.g. ``framebuf.line3#1``, ``rays.consume#0``), so an alarm list can be
folded back onto the pattern that produced it.  This is how the
false-alarm tables were calibrated, and it is useful to downstream users
for answering "where do my alarms come from?" — the paper's own analysis
style ("the number of false alarms caused by false sharing is
significant", Section 5.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.common.events import Site
from repro.reporting import DetectionResult


def pattern_of(site: Site) -> str:
    """The pattern prefix of a site label (text before the first dot)."""
    label = site.label or f"{site.file}:{site.line}"
    head = label.split(".", 1)[0]
    return head.split("#", 1)[0]


@dataclass(frozen=True)
class Attribution:
    """Alarm counts grouped by pattern."""

    detector: str
    by_pattern: tuple[tuple[str, int], ...]

    @property
    def total(self) -> int:
        """Total distinct alarm sites."""
        return sum(count for _, count in self.by_pattern)

    def format(self) -> str:
        """A small human-readable table, largest contributor first."""
        lines = [f"alarm attribution for {self.detector} ({self.total} sites):"]
        lines.extend(
            f"  {pattern:<16} {count:>4}" for pattern, count in self.by_pattern
        )
        return "\n".join(lines)


def attribute_alarms(result: DetectionResult) -> Attribution:
    """Group ``result``'s alarm sites by their pattern prefix."""
    counts = Counter(pattern_of(site) for site in result.reports.sites())
    ordered = tuple(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))
    return Attribution(detector=result.detector, by_pattern=ordered)


def compare_attributions(a: Attribution, b: Attribution) -> str:
    """Side-by-side view of two detectors' alarm sources."""
    patterns = sorted(
        {p for p, _ in a.by_pattern} | {p for p, _ in b.by_pattern}
    )
    left = dict(a.by_pattern)
    right = dict(b.by_pattern)
    lines = [f"{'pattern':<16}{a.detector:>14}{b.detector:>14}"]
    for pattern in patterns:
        lines.append(
            f"{pattern:<16}{left.get(pattern, 0):>14}{right.get(pattern, 0):>14}"
        )
    return "\n".join(lines)
