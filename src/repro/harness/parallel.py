"""The parallel experiment engine: fan the evaluation grid out over processes.

The evaluation protocol (Section 4) is a grid of independent cells —
``(app, run, detector configuration) -> RunOutcome`` — and every
stochastic choice inside a cell derives from
:func:`~repro.common.rng.derive_seed` on the cell coordinates, so a cell's
outcome is a pure function of its coordinates.  That makes the grid
embarrassingly parallel: this module chunks it, ships the chunks to a
``multiprocessing`` pool, and merges the results.

Design:

* **Cells** (:class:`GridCell`) are frozen and picklable: an app name, a
  run index, and a :class:`~repro.harness.detectors.DetectorConfig`.
* **Chunking** groups cells by (app, run): one chunk = one interleaved
  execution plus every detector configuration that scores against it, so
  a worker builds (or disk-loads) each trace exactly once no matter how
  many configurations the sweep puts on it.
* **Workers** each hold their own
  :class:`~repro.harness.experiment.ExperimentRunner` over the *shared*
  on-disk verdict and trace caches, whose atomic
  write-then-:func:`os.replace` protocol makes concurrent writes safe.
* **Merging**: each chunk returns its outcomes plus a worker-local
  :class:`~repro.obs.metrics.MetricsRegistry` shard; :func:`run_grid`
  merges the shards and sorts the outcomes into canonical order, so the
  assembled :class:`GridReport` is identical regardless of worker
  scheduling.

Serial equivalence is structural, not incidental: workers run the very
same :meth:`ExperimentRunner.run_detectors` single-pass engine code path
a ``jobs=1`` run does, with the same derived seeds, so ``-j N`` is
bit-for-bit identical to ``-j 1``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from repro.harness.detectors import DetectorConfig, config_signature
from repro.harness.experiment import RunOutcome
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class GridCell:
    """One evaluation-grid coordinate: a run of one app under one config."""

    app: str
    run: int
    config: DetectorConfig

    @property
    def signature(self) -> str:
        """The cell's detector-configuration cache signature."""
        return config_signature(self.config)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its ExperimentRunner.

    Plain strings/ints only, so the spec pickles cheaply to every worker
    regardless of the multiprocessing start method.
    """

    workload_seed: object = 0
    cache_dir: str | None = None
    trace_cache_dir: str | None = None
    tape_cache_dir: str | None = None
    engine_path: str = "auto"
    engine_jobs: int = 1


#: One task for a worker: every configuration scoring one (app, run) trace.
Chunk = tuple[str, int, tuple[DetectorConfig, ...]]


@dataclass
class GridReport:
    """The merged result of one parallel (or serial) grid evaluation."""

    outcomes: list[RunOutcome]
    jobs: int
    chunks: int
    wall_s: float
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def cells(self) -> int:
        """Number of evaluated grid cells."""
        return len(self.outcomes)

    def outcome_index(self) -> dict[tuple[str, int, str], RunOutcome]:
        """Outcomes keyed by (app, run, configuration signature)."""
        return {(o.app, o.run, o.detector): o for o in self.outcomes}

    def to_dict(self) -> dict:
        """JSON-serialisable summary (outcomes + merged metrics)."""
        return {
            "jobs": self.jobs,
            "chunks": self.chunks,
            "cells": self.cells,
            "wall_s": self.wall_s,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "metrics": self.metrics.snapshot_all(),
        }


def plan_chunks(cells: Iterable[GridCell]) -> list[Chunk]:
    """Group cells by (app, run) into deterministic, deduplicated chunks.

    Chunks are sorted by (app, run) and configurations by signature, so the
    task queue is identical regardless of the order cells were enumerated
    in — important for reproducible scheduling and cache-warm patterns.
    """
    grouped: dict[tuple[str, int], set[DetectorConfig]] = {}
    for cell in cells:
        grouped.setdefault((cell.app, cell.run), set()).add(cell.config)
    return [
        (app, run, tuple(sorted(configs, key=config_signature)))
        for (app, run), configs in sorted(grouped.items())
    ]


T = TypeVar("T")
R = TypeVar("R")


def fan_out(
    tasks: Sequence[T],
    worker: Callable[[T], R],
    *,
    jobs: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    serial_cleanup: Callable[[], None] | None = None,
) -> list[R]:
    """Map ``worker`` over ``tasks``, serially or across worker processes.

    The shared fan-out engine behind the experiment grid and the fuzzing
    harness.  With ``jobs <= 1`` (or a single task) everything runs in this
    process through the identical code path a pool worker would take:
    ``initializer(*initargs)`` once, then ``worker`` per task, then
    ``serial_cleanup`` (pool workers are simply discarded instead).  With
    more jobs, tasks fan out over a ``multiprocessing`` pool.

    Results are returned in **completion order** — callers that need
    determinism must sort by a key of the task itself, the same way
    :func:`run_grid` sorts outcomes into canonical grid order.
    """
    jobs = max(1, int(jobs))
    workers = min(jobs, len(tasks)) if tasks else 0
    results: list[R] = []
    if workers <= 1:
        if initializer is not None:
            initializer(*initargs)
        try:
            for task in tasks:
                results.append(worker(task))
        finally:
            if serial_cleanup is not None:
                serial_cleanup()
        return results
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=workers, initializer=initializer, initargs=initargs
    ) as pool:
        for result in pool.imap_unordered(worker, tasks):
            results.append(result)
    return results


# Worker-process state: one runner per process, created by the pool
# initializer and reused across chunks so program/digest memos survive.
_WORKER_RUNNER = None


def _worker_init(spec: WorkerSpec) -> None:
    """Pool initializer: build this worker's runner over the shared caches."""
    global _WORKER_RUNNER
    from repro.harness.experiment import ExperimentRunner

    _WORKER_RUNNER = ExperimentRunner(
        workload_seed=spec.workload_seed,
        cache_dir=spec.cache_dir,
        trace_cache_dir=spec.trace_cache_dir,
        tape_cache_dir=spec.tape_cache_dir,
        engine_path=spec.engine_path,
        engine_jobs=spec.engine_jobs,
        jobs=1,
    )


def _worker_chunk(chunk: Chunk) -> tuple[list[RunOutcome], MetricsRegistry]:
    """Evaluate one (app, run) chunk: all its configs against one trace."""
    runner = _WORKER_RUNNER
    assert runner is not None, "worker used before _worker_init"
    app, run, configs = chunk
    # A fresh registry per chunk makes the returned shard exactly this
    # chunk's activity, with no cross-chunk double counting.
    runner.metrics = MetricsRegistry()
    # One engine session per execution: the chunk's trace is walked once
    # for every configuration scoring against it.
    outcomes = runner.run_detectors(app, run, configs)
    # The trace of this (app, run) will not be needed again in this worker
    # (chunks partition the grid by execution), so release the memory and
    # close any cache mmaps the chunk opened — long grids would otherwise
    # accumulate one file descriptor per visited cache entry.
    runner.drop_trace(app, run)
    runner.trace_cache.close()
    runner.tape_cache.close()
    return outcomes, runner.metrics


def run_grid(
    cells: Sequence[GridCell],
    *,
    jobs: int,
    workload_seed: object = 0,
    cache_dir: str | Path | None = None,
    trace_cache_dir: str | Path | None = None,
    tape_cache_dir: str | Path | None = None,
    engine_path: str = "auto",
    engine_jobs: int | None = None,
) -> GridReport:
    """Evaluate a grid of cells, fanned out over ``jobs`` worker processes.

    With ``jobs <= 1`` (or a single chunk) the grid runs serially in this
    process through the identical code path, so callers can thread a user
    supplied ``--jobs`` straight through.

    ``jobs`` is the *total* process budget.  When the grid has fewer chunks
    than jobs, the surplus flows down as ``engine_jobs`` — each worker's
    engine sessions may shard large traces across the leftover processes —
    so nested parallelism never oversubscribes beyond ``jobs`` processes.
    An explicit ``engine_jobs`` overrides the split.
    """
    t0 = time.perf_counter()
    chunks = plan_chunks(cells)
    jobs = max(1, int(jobs))
    workers = min(jobs, len(chunks)) if chunks else 0
    if engine_jobs is None:
        engine_jobs = max(1, jobs // workers) if workers else 1
    spec = WorkerSpec(
        workload_seed=workload_seed,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        trace_cache_dir=str(trace_cache_dir) if trace_cache_dir is not None else None,
        tape_cache_dir=str(tape_cache_dir) if tape_cache_dir is not None else None,
        engine_path=engine_path,
        engine_jobs=max(1, int(engine_jobs)),
    )

    outcomes: list[RunOutcome] = []
    metrics = MetricsRegistry()
    for chunk_outcomes, shard in fan_out(
        chunks,
        _worker_chunk,
        jobs=jobs,
        initializer=_worker_init,
        initargs=(spec,),
        serial_cleanup=_reset_worker,
    ):
        outcomes.extend(chunk_outcomes)
        metrics.merge_registry(shard)

    # Canonical order: independent of worker scheduling.
    outcomes.sort(key=lambda o: (o.app, o.run, o.detector))
    metrics.add("grid.chunks", len(chunks))
    metrics.add("grid.cells", len(outcomes))
    return GridReport(
        outcomes=outcomes,
        jobs=jobs,
        chunks=len(chunks),
        wall_s=time.perf_counter() - t0,
        metrics=metrics,
    )


def _reset_worker() -> None:
    """Drop the in-process runner (used by the serial path and tests)."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = None


def default_jobs() -> int:
    """A sensible ``--jobs`` auto value: the machine's CPU count."""
    return os.cpu_count() or 1
