"""Named benchmarks behind ``repro bench``: structured, comparable, cheap.

Each benchmark runs a fixed pipeline shape for N rounds, times every phase
per round, and packs the result into the observatory's
:class:`~repro.obs.perf.BenchResult` schema — per-phase min-of-rounds
timings plus a :class:`~repro.obs.telemetry.FlightRecorder` counter
snapshot — so ``BENCH_<name>.json`` artifacts diff cleanly across commits
via :func:`repro.obs.perf.compare_bench`.

Two benchmarks cover the engine's hot paths:

* ``engine`` — the Table 2 cell shape: one interleaved trace scored by
  several detector configurations in a single
  :class:`~repro.engine.EngineSession` pass.  Phases: ``build``,
  ``interleave``, ``detect``.  Detect rounds all score the *same* trace
  (the round-1 interleaving), so the columnar/tape memos amortize exactly
  as they do in a real grid cell where one trace meets many
  configurations — round 1 pays the tape recording, later rounds measure
  the steady-state walk, and min-of-rounds reports the latter.  The
  flight-recorder telemetry comes from one extra untimed pass (an active
  recorder forces the scalar walk, so it cannot ride the timed rounds).
* ``engine_sharded`` — the same cell shape on the address-sharded
  parallel path (``path="sharded"``, ``engine_jobs`` worker processes),
  producing a ``BENCH_engine_sharded.json`` CI can compare against the
  single-process ``engine`` artifact of the same commit to gate the
  scale-out win.
* ``pipeline`` — one full observed :func:`~repro.harness.pipeline.run_pipeline`
  (build → interleave → characterize → detect), phases straight from its
  :class:`~repro.obs.profile.PhaseProfiler`.
* ``scaling`` — the many-core study: one trace re-detected at every
  (core count × coherence fabric) coordinate, one timed phase per
  coordinate, with the broadcast-vs-directory traffic estimates in
  ``extras["grid"]``.

All accept ``--app``/``--detectors`` overrides so CI can run the full
water-nsquared cell while tests use a seconds-scale workload.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.common.errors import HarnessError
from repro.engine import EngineSession
from repro.harness.detectors import DetectorConfig
from repro.obs import FlightRecorder, Observability
from repro.obs.perf import BenchResult
from repro.threads.runtime import interleave
from repro.threads.scheduler import RandomScheduler
from repro.workloads.registry import build_workload

#: The Table 2 cell the engine benchmark replays by default, enlarged
#: with the PR-8 hybrid family.  The CI pre-columnar gate pins the
#: original four keys explicitly (its frozen baseline scored exactly
#: those), so growing this default does not erode that margin.
DEFAULT_ENGINE_APP = "water-nsquared"
DEFAULT_ENGINE_DETECTORS = (
    "hard-default",
    "hb-default",
    "software",
    "hb-ideal",
    "fasttrack",
    "acculock",
    "multilock-hb",
)
DEFAULT_PIPELINE_APP = "raytrace"

#: The scaling benchmark's default workload: server-shaped, 8 threads, so
#: growing the core count actually changes thread placement.
DEFAULT_SCALING_APP = "webserver"

#: Names ``run_benchmark`` accepts.
BENCHMARKS = ("engine", "engine_sharded", "pipeline", "scaling")


def _coerce_configs(detectors) -> list[DetectorConfig]:
    if isinstance(detectors, str):
        detectors = [key.strip() for key in detectors.split(",") if key.strip()]
    configs = [DetectorConfig.coerce(key) for key in detectors]
    if not configs:
        raise HarnessError("benchmark needs at least one detector")
    return configs


def _bench_engine(
    *,
    app: str,
    detectors,
    rounds: int,
    workload_seed: int,
    schedule_seed: int,
    engine_path: str,
    engine_jobs: int = 1,
    name: str = "engine",
    log: Callable[[str], None] | None,
) -> BenchResult:
    configs = _coerce_configs(detectors)
    perf = time.perf_counter
    build_s: list[float] = []
    interleave_s: list[float] = []
    detect_s: list[float] = []
    shared_trace = None
    for index in range(rounds):
        t0 = perf()
        program = build_workload(app, seed=workload_seed)
        build_s.append(perf() - t0)

        t0 = perf()
        scheduler = RandomScheduler(seed=schedule_seed, max_burst=8)
        trace = interleave(program, scheduler).trace
        interleave_s.append(perf() - t0)
        if shared_trace is None:
            shared_trace = trace

        # Every detect round scores the round-1 trace: the columnar/tape
        # memos live on the trace object, so this measures the same
        # amortization a grid cell sees.
        session = EngineSession(shared_trace, path=engine_path, jobs=engine_jobs)
        for config in configs:
            session.add_config(config)
        t0 = perf()
        session.run()
        detect_s.append(perf() - t0)
        if log is not None:
            log(
                f"round {index + 1}/{rounds}: build {build_s[-1]:.3f}s "
                f"interleave {interleave_s[-1]:.3f}s detect {detect_s[-1]:.3f}s"
            )

    # Untimed telemetry pass: the recorder demands the scalar walk, so it
    # stays off the clock regardless of the measured engine path.
    recorder = FlightRecorder()
    observed = EngineSession(
        shared_trace, obs=Observability(telemetry=recorder), path="scalar"
    )
    for config in configs:
        observed.add_config(config)
    observed.run()

    telemetry = recorder.snapshot()
    result = BenchResult(name=name, rounds=rounds)
    result.add_phase("build", build_s)
    result.add_phase("interleave", interleave_s)
    result.add_phase("detect", detect_s)
    result.counters = telemetry["counters"]
    result.extras = {
        "app": app,
        "detectors": [config.key for config in configs],
        "trace_events": len(shared_trace),
        "workload_seed": workload_seed,
        "schedule_seed": schedule_seed,
        "engine_path": engine_path,
        "engine_jobs": engine_jobs,
        "telemetry": {
            "derived": telemetry["derived"],
            "cores": telemetry["cores"],
            "frames": telemetry["frames"],
        },
    }
    return result


def _bench_pipeline(
    *,
    app: str,
    detectors,
    rounds: int,
    workload_seed: int,
    schedule_seed: int,
    log: Callable[[str], None] | None,
) -> BenchResult:
    from repro.harness.pipeline import run_pipeline

    configs = _coerce_configs(detectors)
    detector_key = ",".join(config.key for config in configs)
    recorder = FlightRecorder()
    phase_rounds: dict[str, list[float]] = {}
    trace_events = 0
    for index in range(rounds):
        obs = Observability(telemetry=recorder)
        run = run_pipeline(
            app,
            detector_key,
            workload_seed=workload_seed,
            schedule_seed=schedule_seed,
            obs=obs,
        )
        trace_events = run.report.trace_events
        for record in run.profiler.records:
            phase_rounds.setdefault(record.name, []).append(record.wall_s)
        if log is not None:
            log(
                f"round {index + 1}/{rounds}: "
                f"{run.profiler.total_wall_s:.3f}s total"
            )

    telemetry = recorder.snapshot()
    result = BenchResult(name="pipeline", rounds=rounds)
    for name, rounds_s in phase_rounds.items():
        result.add_phase(name, rounds_s)
    result.counters = telemetry["counters"]
    result.extras = {
        "app": app,
        "detectors": [config.key for config in configs],
        "trace_events": trace_events,
        "workload_seed": workload_seed,
        "schedule_seed": schedule_seed,
        "telemetry": {
            "derived": telemetry["derived"],
            "cores": telemetry["cores"],
            "frames": telemetry["frames"],
        },
    }
    return result


def _bench_scaling(
    *,
    app: str,
    detectors,
    rounds: int,
    workload_seed: int,
    schedule_seed: int,
    engine_path: str,
    log: Callable[[str], None] | None,
) -> BenchResult:
    """Detect-phase timings across the (core count x fabric) machine grid.

    One trace, one detector configuration per (cores, fabric) coordinate;
    each coordinate is its own timed phase (``detect_<fabric>_c<cores>``),
    so ``compare_bench`` flags a regression on *any* machine shape — e.g.
    a sharer-walk that goes quadratic at 64 cores.  ``extras["grid"]``
    records each coordinate's simulated cycles and the
    broadcast-vs-directory control-traffic estimate (the
    ``BENCH_scaling.json`` numbers behind the scaling exhibit).
    """
    from repro.common.config import COHERENCE_KINDS, SCALING_CORE_COUNTS
    from repro.harness.tables import control_traffic

    configs = _coerce_configs(detectors)
    detector = configs[0].key
    coords = [
        (cores, fabric)
        for cores in SCALING_CORE_COUNTS
        for fabric in COHERENCE_KINDS
    ]
    perf = time.perf_counter

    program = build_workload(app, seed=workload_seed)
    scheduler = RandomScheduler(seed=schedule_seed, max_burst=8)
    trace = interleave(program, scheduler).trace

    phase_rounds: dict[str, list[float]] = {}
    grid: dict[str, dict] = {}
    for index in range(rounds):
        for cores, fabric in coords:
            config = DetectorConfig(
                key=detector,
                num_cores=None if cores == 4 else cores,
                coherence=None if fabric == "snoopy" else fabric,
            )
            session = EngineSession(trace, path=engine_path)
            session.add_config(config)
            t0 = perf()
            [result] = session.run()
            elapsed = perf() - t0
            phase = f"detect_{fabric}_c{cores}"
            phase_rounds.setdefault(phase, []).append(elapsed)
            if index == 0:
                stats = result.stats.snapshot()
                cell = control_traffic(stats, cores, fabric)
                cell["cycles"] = result.cycles
                cell["detector_extra_cycles"] = result.detector_extra_cycles
                grid[phase] = cell
        if log is not None:
            total = sum(times[index] for times in phase_rounds.values())
            log(f"round {index + 1}/{rounds}: {total:.3f}s over {len(coords)} cells")

    result = BenchResult(name="scaling", rounds=rounds)
    for phase, times in phase_rounds.items():
        result.add_phase(phase, times)
    result.extras = {
        "app": app,
        "detector": detector,
        "trace_events": len(trace),
        "workload_seed": workload_seed,
        "schedule_seed": schedule_seed,
        "engine_path": engine_path,
        "core_counts": list(SCALING_CORE_COUNTS),
        "fabrics": list(COHERENCE_KINDS),
        "grid": grid,
    }
    return result


def run_benchmark(
    name: str,
    *,
    app: str | None = None,
    detectors=None,
    rounds: int = 3,
    workload_seed: int = 0,
    schedule_seed: int = 0,
    engine_path: str = "auto",
    engine_jobs: int | None = None,
    log: Callable[[str], None] | None = None,
) -> BenchResult:
    """Run one named benchmark and return its structured result.

    Args:
        name: one of :data:`BENCHMARKS`.
        app: workload override (defaults per benchmark).
        detectors: detector keys (sequence or comma-separated string).
        rounds: timing rounds; every phase keeps all of them and the min.
        workload_seed / schedule_seed: the usual determinism knobs.
        engine_path: the ``engine`` benchmark's session walk (``"auto"``,
            ``"batch"``, ``"scalar"``, or ``"sharded"``); ignored by
            ``pipeline``; ``engine_sharded`` forces ``"sharded"``.
        engine_jobs: worker budget of the sharded walk (defaults to the
            CPU count for ``engine_sharded``, 1 otherwise).
        log: optional per-round progress sink (e.g. stderr printer).
    """
    if rounds < 1:
        raise HarnessError(f"rounds must be >= 1, got {rounds}")
    if name == "engine":
        return _bench_engine(
            app=app or DEFAULT_ENGINE_APP,
            detectors=detectors or DEFAULT_ENGINE_DETECTORS,
            rounds=rounds,
            workload_seed=workload_seed,
            schedule_seed=schedule_seed,
            engine_path=engine_path,
            engine_jobs=engine_jobs if engine_jobs is not None else 1,
            log=log,
        )
    if name == "engine_sharded":
        from repro.harness.parallel import default_jobs

        return _bench_engine(
            app=app or DEFAULT_ENGINE_APP,
            detectors=detectors or DEFAULT_ENGINE_DETECTORS,
            rounds=rounds,
            workload_seed=workload_seed,
            schedule_seed=schedule_seed,
            engine_path="sharded",
            engine_jobs=(
                engine_jobs if engine_jobs is not None else default_jobs()
            ),
            name="engine_sharded",
            log=log,
        )
    if name == "scaling":
        return _bench_scaling(
            app=app or DEFAULT_SCALING_APP,
            detectors=detectors or ("hard-default",),
            rounds=rounds,
            workload_seed=workload_seed,
            schedule_seed=schedule_seed,
            engine_path=engine_path,
            log=log,
        )
    if name == "pipeline":
        return _bench_pipeline(
            app=app or DEFAULT_PIPELINE_APP,
            detectors=detectors or ("hard-default",),
            rounds=rounds,
            workload_seed=workload_seed,
            schedule_seed=schedule_seed,
            log=log,
        )
    raise HarnessError(
        f"unknown benchmark {name!r}; expected one of {BENCHMARKS}"
    )
