"""The simulated CMP: private L1s, inclusive shared L2, a coherence fabric.

The :class:`Machine` satisfies program-level memory accesses one cache line
at a time, maintains MESI coherence among the per-core L1s with an inclusive
shared L2 behind them, charges latency cycles (Table 1 parameters), and
routes every coherence decision through the configured fabric — the
paper's snoopy broadcast bus by default, or the Section 3.4 directory
(:mod:`repro.sim.fabric`) when ``MachineConfig.coherence = "directory"`` —
at any power-of-two core count.  It also
notifies registered :class:`~repro.sim.coherence.MachineListener` objects of
every metadata-relevant event: fills (with their data source), writebacks,
evictions, invalidations, and L2 displacements.

Invariants maintained (checked in tests and by :meth:`check_invariants`):

* inclusion — every valid L1 line is also valid in the L2;
* single writer — at most one L1 holds a line in Modified/Exclusive state,
  and then no other L1 holds it at all;
* shared readers — if two or more L1s hold a line, all hold it Shared.
"""

from __future__ import annotations

from repro.common.addresses import spanned_lines
from repro.common.config import MachineConfig
from repro.common.errors import CoherenceError, SimulationError
from repro.common.stats import StatCounters
from repro.sim.cache import MESI, Cache, Victim
from repro.sim.fabric import make_fabric
from repro.sim.coherence import (
    AccessResult,
    EvictionRecord,
    FillSource,
    LineAccessResult,
    MachineListener,
)


#: Pre-built stat names for the per-access counters (hot path).
_ACCESS_STAT = {
    (level, is_write): f"access.{level}_{'w' if is_write else 'r'}"
    for level in ("l1", "c2c", "l2", "memory")
    for is_write in (False, True)
}


class Machine:
    """A functional model of the paper's CMP memory system (4..N cores)."""

    def __init__(self, config: MachineConfig | None = None, obs=None):
        self.config = config or MachineConfig()
        # ``obs`` is a repro.obs.Observability (kept untyped to avoid a
        # dependency edge from the simulator into the observability layer).
        emitter = obs.emitter if obs is not None else None
        self._emitter_on = emitter is not None and emitter.enabled
        self._obs_emitter = emitter
        self.l1s = [
            Cache(self.config.l1, name=f"L1#{core}", emitter=emitter)
            for core in range(self.config.num_cores)
        ]
        self.l2 = Cache(self.config.l2, name="L2", emitter=emitter)
        self.bus = make_fabric(self.config, emitter=emitter)
        self.stats = StatCounters()
        self.evictions = EvictionRecord()
        self._listeners: list[MachineListener] = []
        self._cycles = 0
        # line address -> set of cores whose L1 holds a valid copy.  Kept in
        # lockstep with the L1 contents; profiling showed deriving this by
        # probing every L1 per access dominated simulation time.
        self._holders: dict[int, set[int]] = {}
        # thread id -> placed core, filled lazily on first sighting so the
        # placement counters reflect the threads that actually ran.
        self._thread_cores: dict[int, int] = {}
        self._occupied_cores: set[int] = set()

    # -------------------------------------------------------------- listeners

    def add_listener(self, listener: MachineListener) -> None:
        """Register a coherence-event observer (e.g. a race detector)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: MachineListener) -> None:
        """Unregister a previously added observer."""
        self._listeners.remove(listener)

    # ----------------------------------------------------------------- timing

    @property
    def cycles(self) -> int:
        """Total cycles charged so far (accesses + extensions + compute)."""
        return self._cycles

    def charge(self, cycles: int, reason: str) -> None:
        """Charge extra cycles (used by detectors and the compute model)."""
        if cycles < 0:
            raise SimulationError(f"negative cycle charge: {cycles}")
        self._cycles += cycles
        self.stats.add(f"cycles.{reason}", cycles)

    # -------------------------------------------------------------- topology

    def sharers(self, line_addr: int, *, excluding: int | None = None) -> list[int]:
        """Cores whose L1 holds a valid copy of ``line_addr``."""
        holders = self._holders.get(line_addr)
        if not holders:
            return []
        if excluding is None:
            return sorted(holders)
        return sorted(core for core in holders if core != excluding)

    def has_other_sharers(self, line_addr: int, *, excluding: int) -> bool:
        """True iff any core besides ``excluding`` holds ``line_addr``.

        Equivalent to ``bool(self.sharers(line_addr, excluding=excluding))``
        but without building (and sorting) the list — the detectors call this
        on every metadata change to decide whether a broadcast is needed.
        """
        holders = self._holders.get(line_addr)
        if not holders:
            return False
        return len(holders) > 1 or excluding not in holders

    def _track_fill(self, core: int, line_addr: int) -> None:
        self._holders.setdefault(line_addr, set()).add(core)

    def _track_drop(self, core: int, line_addr: int) -> None:
        holders = self._holders.get(line_addr)
        if holders is not None:
            holders.discard(core)
            if not holders:
                del self._holders[line_addr]

    def core_for_thread(self, thread_id: int) -> int:
        """Thread→core placement under the configured policy.

        Delegates the mapping itself to
        :meth:`~repro.common.config.MachineConfig.core_of` (the single
        source of truth shared with the tape recorder and the batch
        kernels) and counts placements: ``machine.threads.placed`` ticks
        once per distinct thread, ``machine.cores.oversubscribed`` once
        per thread that lands on an already-occupied core — so a 64-core
        run with 8 threads, or an 8-thread run folded onto 4 cores, is
        visible in the counters instead of silent.
        """
        core = self._thread_cores.get(thread_id)
        if core is None:
            core = self.config.core_of(thread_id)
            self._thread_cores[thread_id] = core
            self.stats.add("machine.threads.placed")
            if core in self._occupied_cores:
                self.stats.add("machine.cores.oversubscribed")
            else:
                self._occupied_cores.add(core)
        return core

    # ------------------------------------------------------------ access path

    def access(self, core: int, addr: int, size: int, is_write: bool) -> AccessResult:
        """Perform one program access, spanning lines if necessary."""
        if not 0 <= core < self.config.num_cores:
            raise SimulationError(f"no such core: {core}")
        results = [
            self._access_line(core, line_addr, is_write)
            for line_addr in spanned_lines(addr, size, self.config.line_size)
        ]
        total = sum(r.cycles for r in results)
        self.stats.add("access.total")
        self.stats.add("access.writes" if is_write else "access.reads")
        return AccessResult(
            core=core,
            addr=addr,
            size=size,
            is_write=is_write,
            lines=tuple(results),
            cycles=total,
        )

    # Internal: one line's worth of the access.
    def _access_line(self, core: int, line_addr: int, is_write: bool) -> LineAccessResult:
        l1 = self.l1s[core]
        line = l1.access(line_addr)
        cycles = self.config.l1.latency_cycles

        if line is not None:
            result = self._hit_path(core, line_addr, line.state, is_write, cycles)
        else:
            result = self._miss_path(core, line_addr, is_write, cycles)
        self._cycles += result.cycles
        self.stats.add("cycles.access", result.cycles)
        self.stats.add(_ACCESS_STAT[result.hit_level, is_write])
        return result

    def _hit_path(
        self, core: int, line_addr: int, state: MESI, is_write: bool, cycles: int
    ) -> LineAccessResult:
        l1 = self.l1s[core]
        upgraded = False
        invalidated: tuple[int, ...] = ()
        if is_write:
            if state is MESI.SHARED:
                # Bus upgrade: invalidate the other Shared copies.  The
                # fabric hooks charge the directory's indirection (home
                # lookup + exact-sharer invalidations); on the snoopy bus
                # they are free — the address phase above was the broadcast.
                cycles += self.bus.address_only("upgrade")
                cycles += self.bus.home_lookup("upgrade")
                victims = self.sharers(line_addr, excluding=core)
                for other in victims:
                    self.l1s[other].set_state(line_addr, MESI.INVALID)
                    self._track_drop(other, line_addr)
                    self.evictions.invalidations += 1
                    self._emit("on_invalidate", other, line_addr)
                cycles += self.bus.sharer_invalidations(len(victims))
                invalidated = tuple(victims)
                upgraded = True
                l1.set_state(line_addr, MESI.MODIFIED)
            elif state is MESI.EXCLUSIVE:
                l1.set_state(line_addr, MESI.MODIFIED)
        return LineAccessResult(
            line_addr=line_addr,
            is_write=is_write,
            hit_level="l1",
            fill_source=None,
            upgraded=upgraded,
            invalidated_cores=invalidated,
            l1_victim=None,
            l2_victim_line=None,
            shared_after=bool(self.sharers(line_addr, excluding=core)),
            cycles=cycles,
        )

    def _miss_path(
        self, core: int, line_addr: int, is_write: bool, cycles: int
    ) -> LineAccessResult:
        l1 = self.l1s[core]

        # 1. Make room in the requester's L1 *first*, so the listener sees the
        #    victim leave before the new line arrives.
        l1_victim = l1.choose_victim(line_addr)
        if l1_victim is not None:
            l1.evict(l1_victim.line_addr)
            self._track_drop(core, l1_victim.line_addr)
            self._retire_l1_line(core, l1_victim)

        # 2. Locate the line: snoop the other L1s (free on the bus) or ask
        #    the home node (charged by the directory fabric).
        cycles += self.bus.home_lookup("miss")
        holders = self.sharers(line_addr, excluding=core)
        owner = self._owner_among(holders, line_addr)
        invalidated: list[int] = []
        # Invalidations of the *requested* line are deferred until after the
        # requester's on_fill, because the fill copies metadata from the very
        # copy the invalidation will destroy.
        deferred_invalidations: list[int] = []
        l2_victim_line: int | None = None

        if owner is not None:
            # Cache-to-cache transfer from the Modified/Exclusive holder.
            hit_level = "c2c"
            source = FillSource.from_core(owner)
            cycles += self.bus.owner_forward()
            owner_line = self.l1s[owner].lookup(line_addr)
            assert owner_line is not None
            if owner_line.state is MESI.MODIFIED:
                # Demotion writes the dirty data back into the L2.
                cycles += self.bus.line_transfer(self.config.line_size, "writeback")
                self.evictions.l1_writebacks += 1
                self._set_l2_dirty(line_addr)
                self._emit("on_writeback", owner, line_addr)
            cycles += self.bus.line_transfer(self.config.line_size, "c2c")
            if is_write:
                self.l1s[owner].set_state(line_addr, MESI.INVALID)
                self._track_drop(owner, line_addr)
                self.evictions.invalidations += 1
                deferred_invalidations.append(owner)
                invalidated.append(owner)
                cycles += self.bus.sharer_invalidations(1)
            else:
                self.l1s[owner].set_state(line_addr, MESI.SHARED)
        elif holders:
            # Shared copies exist; the inclusive L2 supplies the data.
            hit_level = "l2"
            source = FillSource.l2()
            cycles += self.config.l2.latency_cycles
            cycles += self.bus.line_transfer(self.config.line_size, "l2_fill")
            if is_write:
                for other in holders:
                    self.l1s[other].set_state(line_addr, MESI.INVALID)
                    self._track_drop(other, line_addr)
                    self.evictions.invalidations += 1
                    deferred_invalidations.append(other)
                    invalidated.append(other)
                cycles += self.bus.sharer_invalidations(len(holders))
        elif self.l2.contains(line_addr):
            hit_level = "l2"
            source = FillSource.l2()
            cycles += self.config.l2.latency_cycles
            cycles += self.bus.line_transfer(self.config.line_size, "l2_fill")
            self.l2.access(line_addr)  # refresh L2 LRU
        else:
            hit_level = "memory"
            source = FillSource.memory()
            cycles += self.config.l2.latency_cycles  # L2 lookup that missed
            cycles += self.config.memory_latency_cycles
            cycles += self.bus.line_transfer(self.config.line_size, "mem_fill")
            l2_victim_line = self._fill_l2_from_memory(line_addr)

        # 3. Install in the requester's L1.
        if is_write:
            new_state = MESI.MODIFIED
        else:
            new_state = MESI.SHARED if self.sharers(line_addr, excluding=core) else MESI.EXCLUSIVE
        fill_victim = self.l1s[core].fill(line_addr, new_state)
        if fill_victim is not None:  # pragma: no cover - step 1 made room
            raise CoherenceError("L1 victim selected twice for one miss")
        self._track_fill(core, line_addr)
        self._emit("on_fill", core, line_addr, source)
        for other in deferred_invalidations:
            self._emit("on_invalidate", other, line_addr)

        return LineAccessResult(
            line_addr=line_addr,
            is_write=is_write,
            hit_level=hit_level,
            fill_source=source,
            upgraded=False,
            invalidated_cores=tuple(invalidated),
            l1_victim=l1_victim,
            l2_victim_line=l2_victim_line,
            shared_after=bool(self.sharers(line_addr, excluding=core)),
            cycles=cycles,
        )

    # ------------------------------------------------------- eviction helpers

    def _retire_l1_line(self, core: int, victim: Victim) -> None:
        """Handle a capacity eviction from an L1."""
        self.evictions.l1_evictions += 1
        if victim.dirty:
            self.bus.line_transfer(self.config.line_size, "writeback")
            self.evictions.l1_writebacks += 1
            self._set_l2_dirty(victim.line_addr)
            self._emit("on_writeback", core, victim.line_addr)
        self._emit("on_l1_evict", core, victim.line_addr, victim.dirty)

    def _set_l2_dirty(self, line_addr: int) -> None:
        if not self.l2.contains(line_addr):
            raise CoherenceError(
                f"inclusion violated: writeback of 0x{line_addr:x} missed the L2"
            )
        self.l2.set_state(line_addr, MESI.MODIFIED)

    def _fill_l2_from_memory(self, line_addr: int) -> int | None:
        """Install a fresh line in the L2; handle the inclusion victim."""
        victim = self.l2.fill(line_addr, MESI.EXCLUSIVE)
        if victim is None:
            return None
        # Back-invalidate every L1 copy of the victim (inclusion).
        victim_dirty = victim.dirty
        back_invalidated = 0
        for other, l1 in enumerate(self.l1s):
            line = l1.lookup(victim.line_addr)
            if line is None:
                continue
            if line.dirty:
                victim_dirty = True
                self.evictions.l1_writebacks += 1
                self.bus.line_transfer(self.config.line_size, "writeback")
            l1.set_state(victim.line_addr, MESI.INVALID)
            self._track_drop(other, victim.line_addr)
            self.evictions.back_invalidations += 1
            back_invalidated += 1
            self._emit("on_invalidate", other, victim.line_addr)
        self.bus.sharer_invalidations(back_invalidated)
        if victim_dirty:
            self.bus.line_transfer(self.config.line_size, "mem_writeback")
            self.evictions.l2_writebacks_to_memory += 1
        self.evictions.note_l2_eviction(victim.line_addr)
        self._emit("on_l2_evict", victim.line_addr)
        if self._emitter_on:
            self._obs_emitter.emit("l2.displacement", line=victim.line_addr)
        return victim.line_addr

    def _owner_among(self, holders: list[int], line_addr: int) -> int | None:
        """The single M/E holder among ``holders``, if any."""
        owners = []
        for core in holders:
            line = self.l1s[core].lookup(line_addr)
            if line is not None and line.state in (MESI.MODIFIED, MESI.EXCLUSIVE):
                owners.append(core)
        if len(owners) > 1:
            raise CoherenceError(
                f"multiple M/E holders of 0x{line_addr:x}: {owners}"
            )
        return owners[0] if owners else None

    def _emit(self, hook: str, *args: object) -> None:
        for listener in self._listeners:
            getattr(listener, hook)(*args)

    # ------------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Raise :class:`CoherenceError` if a MESI/inclusion invariant fails.

        Intended for tests and property-based checks; O(total lines).
        """
        per_line: dict[int, list[tuple[int, MESI]]] = {}
        for core, l1 in enumerate(self.l1s):
            for line in l1.resident_lines():
                per_line.setdefault(line.tag, []).append((core, line.state))
        for line_addr, holders in per_line.items():
            if not self.l2.contains(line_addr):
                raise CoherenceError(
                    f"inclusion violated for 0x{line_addr:x}: in L1s "
                    f"{[c for c, _ in holders]} but not in L2"
                )
            exclusive = [c for c, s in holders if s in (MESI.MODIFIED, MESI.EXCLUSIVE)]
            if exclusive and len(holders) > 1:
                raise CoherenceError(
                    f"0x{line_addr:x} held M/E by {exclusive} alongside "
                    f"{len(holders) - 1} other copies"
                )
            if len(exclusive) > 1:
                raise CoherenceError(
                    f"0x{line_addr:x} has multiple M/E holders: {exclusive}"
                )
