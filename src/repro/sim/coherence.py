"""Coherence-event data types and the listener protocol.

The machine in ``repro.sim.machine`` implements a MESI snoopy protocol over
an inclusive shared L2.  Detectors do not read the caches directly; they
observe the protocol through :class:`MachineListener` callbacks and the
per-access :class:`LineAccessResult` records.  This is the software analogue
of the paper's design, where the candidate set and LState "are part of the
data content of the corresponding line" and move with coherence messages
(Section 3.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.cache import Victim


class SourceKind(enum.Enum):
    """Where the data for a cache fill came from."""

    MEMORY = "memory"
    L2 = "l2"
    CORE = "core"


@dataclass(frozen=True)
class FillSource:
    """The supplier of a line on an L1 miss.

    ``core`` is meaningful only for :attr:`SourceKind.CORE` (cache-to-cache
    transfer from another L1 that held the line in Modified or Exclusive
    state).
    """

    kind: SourceKind
    core: int | None = None

    @classmethod
    def memory(cls) -> "FillSource":
        """Fill satisfied by main memory (metadata starts fresh)."""
        return cls(SourceKind.MEMORY)

    @classmethod
    def l2(cls) -> "FillSource":
        """Fill satisfied by the shared L2 (metadata copied from L2)."""
        return cls(SourceKind.L2)

    @classmethod
    def from_core(cls, core: int) -> "FillSource":
        """Fill satisfied by another L1 (metadata copied from that core)."""
        return cls(SourceKind.CORE, core)

    def __str__(self) -> str:
        if self.kind is SourceKind.CORE:
            return f"core{self.core}"
        return self.kind.value


@dataclass(frozen=True)
class LineAccessResult:
    """Everything that happened while satisfying one line's worth of access.

    Attributes:
        line_addr: base address of the accessed line.
        is_write: whether the access was a write.
        hit_level: ``"l1"``, ``"c2c"``, ``"l2"`` or ``"memory"``.
        fill_source: supplier on a miss; None on an L1 hit.
        upgraded: a Shared→Modified upgrade transaction was issued.
        invalidated_cores: other cores whose copies were invalidated.
        l1_victim: line displaced from the requester's L1, if any.
        l2_victim_line: line displaced from the L2 (metadata lost), if any.
        shared_after: True if, after this access, at least one *other* L1
            still holds a valid copy — the condition under which a changed
            candidate set must be broadcast (Figure 6).
        cycles: latency charged for this line access (excluding detector
            extensions, which the detector charges separately).
    """

    line_addr: int
    is_write: bool
    hit_level: str
    fill_source: FillSource | None
    upgraded: bool
    invalidated_cores: tuple[int, ...]
    l1_victim: Victim | None
    l2_victim_line: int | None
    shared_after: bool
    cycles: int

    @property
    def missed(self) -> bool:
        """True if the access missed in the requester's L1."""
        return self.hit_level != "l1"

    @property
    def filled_from_memory(self) -> bool:
        """True if the line entered the hierarchy fresh from memory."""
        return (
            self.fill_source is not None
            and self.fill_source.kind is SourceKind.MEMORY
        )


@dataclass(frozen=True)
class AccessResult:
    """Result of one program-level access (possibly spanning lines)."""

    core: int
    addr: int
    size: int
    is_write: bool
    lines: tuple[LineAccessResult, ...]
    cycles: int


@dataclass
class EvictionRecord:
    """Aggregate eviction statistics kept by the machine for diagnostics."""

    l1_evictions: int = 0
    l1_writebacks: int = 0
    l2_evictions: int = 0
    l2_writebacks_to_memory: int = 0
    invalidations: int = 0
    back_invalidations: int = 0
    by_line: dict[int, int] = field(default_factory=dict)

    def note_l2_eviction(self, line_addr: int) -> None:
        """Record one L2 displacement of ``line_addr``."""
        self.l2_evictions += 1
        self.by_line[line_addr] = self.by_line.get(line_addr, 0) + 1


class MachineListener:
    """Observer of coherence events; all hooks are no-ops by default.

    Detectors that keep per-cache metadata (HARD, default happens-before)
    subclass this.  Callback order within one access:

    1. ``on_writeback`` / ``on_l1_evict`` for the requester's displaced line,
    2. ``on_writeback`` for a Modified remote copy being demoted,
    3. ``on_invalidate`` + ``on_l2_evict`` for an L2 victim (inclusion),
    4. ``on_fill`` for the requester's new copy,
    5. ``on_invalidate`` for each remote copy of the *requested* line killed
       by a write request — after the fill, because the fill copies metadata
       from the copy the invalidation destroys.
    """

    def on_fill(self, core: int, line_addr: int, source: FillSource) -> None:
        """Core ``core`` received ``line_addr`` from ``source``."""

    def on_writeback(self, core: int, line_addr: int) -> None:
        """Core ``core`` wrote its Modified copy of ``line_addr`` to the L2."""

    def on_l1_evict(self, core: int, line_addr: int, dirty: bool) -> None:
        """Core ``core`` displaced ``line_addr`` from its L1 (capacity)."""

    def on_invalidate(self, core: int, line_addr: int) -> None:
        """Core ``core``'s copy of ``line_addr`` was invalidated."""

    def on_l2_evict(self, line_addr: int) -> None:
        """``line_addr`` left the hierarchy entirely; its metadata is lost."""
