"""Directory-based candidate-set storage (Section 3.4's alternative).

For a directory-based coherence protocol the paper stores the candidate set
and LState *in the directory* instead of in each cache line: "every shared
access gets the candidate set and LState information from the directory,
and then puts the new information back".  Two consequences the model
captures:

* metadata is keyed by memory block in directory storage, so it is **not**
  lost on cache displacement — the detection window is no longer bounded by
  the L2 (the trade-off is directory storage, which scales with memory, not
  cache);
* every shared access incurs a directory round-trip even when the data
  itself hits in the local cache — the paper notes this "can be done in the
  background, but may delay the detection of races"; we charge it as a
  configurable latency.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.common.stats import StatCounters

M = TypeVar("M")


class Directory(Generic[M]):
    """Home-node metadata storage, one entry per line-sized block."""

    def __init__(self, fresh: Callable[[int], M], *, access_cycles: int = 6):
        self._fresh = fresh
        self._entries: dict[int, M] = {}
        self.access_cycles = access_cycles
        self.stats = StatCounters()

    def fetch(self, line_addr: int) -> M:
        """Read a block's metadata (allocating a fresh entry on first use)."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = self._fresh(line_addr)
            self._entries[line_addr] = entry
            self.stats.add("directory.allocations")
        self.stats.add("directory.fetches")
        return entry

    def put_back(self, line_addr: int, entry: M) -> None:
        """Write a block's updated metadata back to its home entry."""
        self._entries[line_addr] = entry
        self.stats.add("directory.updates")

    def reset_all(self, fn: Callable[[M], None]) -> int:
        """Apply ``fn`` to every entry (barrier reset); returns the count."""
        for entry in self._entries.values():
            fn(entry)
        return len(self._entries)

    @property
    def entry_count(self) -> int:
        """Number of allocated directory entries."""
        return len(self._entries)
