"""Functional CMP memory-hierarchy simulator (the paper's SESC substitute)."""

from repro.sim.bus import Bus, MetaCostModel
from repro.sim.cache import MESI, Cache, CacheLine, Victim
from repro.sim.fabric import DirectoryFabric, SnoopyBus, make_fabric, meta_cost_model
from repro.sim.coherence import (
    AccessResult,
    EvictionRecord,
    FillSource,
    LineAccessResult,
    MachineListener,
    SourceKind,
)
from repro.sim.machine import Machine
from repro.sim.metadata import L2_HOLDER, CacheMetadataStore

__all__ = [
    "Bus",
    "SnoopyBus",
    "DirectoryFabric",
    "MetaCostModel",
    "make_fabric",
    "meta_cost_model",
    "MESI",
    "Cache",
    "CacheLine",
    "Victim",
    "AccessResult",
    "EvictionRecord",
    "FillSource",
    "LineAccessResult",
    "MachineListener",
    "SourceKind",
    "Machine",
    "L2_HOLDER",
    "CacheMetadataStore",
]
