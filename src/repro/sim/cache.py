"""Set-associative cache model with MESI line states and LRU replacement.

This is the storage component shared by the private L1s and the shared L2 of
the simulated CMP (Table 1).  It is purely functional bookkeeping: which
lines are resident, in which MESI state, and which line a fill will displace.
Protocol decisions (who supplies data, who gets invalidated) live in
``repro.sim.coherence``; timing lives in ``repro.sim.timing``.

The model is *functional*, not cycle-accurate: it tracks exactly the state
the HARD paper's mechanisms depend on — residency (for the L2-displacement
detection-window effect of Section 3.6 and Tables 4/5), sharing (for the
candidate-set piggybacking of Section 3.4) and evictions — while charging
latencies through a separate accounting model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.common.addresses import line_address
from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.obs.trace import NULL_EMITTER, TraceEmitter


class MESI(enum.Enum):
    """MESI coherence states for a cache line."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """One resident cache line.

    ``tag`` is the full line base address (we do not split tag/index bits —
    the base address is unambiguous).  ``lru_tick`` orders lines within a set
    for LRU replacement.
    """

    tag: int
    state: MESI
    lru_tick: int

    @property
    def dirty(self) -> bool:
        """True if the line holds data newer than the level below."""
        return self.state is MESI.MODIFIED


@dataclass(frozen=True)
class Victim:
    """A line displaced by a fill: its address, and whether it was dirty."""

    line_addr: int
    dirty: bool


class Cache:
    """A set-associative cache of :class:`CacheLine` with true-LRU eviction."""

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        emitter: TraceEmitter | None = None,
    ):
        self.config = config
        self.name = name
        self._sets: list[dict[int, CacheLine]] = [
            {} for _ in range(config.num_sets)
        ]
        self._tick = 0
        self._emitter = emitter if emitter is not None else NULL_EMITTER
        # Hot-path constants (profiled: recomputing them per lookup is the
        # single largest cost of a simulation pass).
        self._line_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1

    # ---------------------------------------------------------------- helpers

    def _set_for(self, line_addr: int) -> dict[int, CacheLine]:
        return self._sets[(line_addr >> self._line_shift) & self._set_mask]

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    # ----------------------------------------------------------------- lookup

    def lookup(self, addr: int) -> CacheLine | None:
        """Return the resident line containing ``addr``, or None.

        Does *not* update LRU state; use :meth:`access` on the hit path.
        """
        line_addr = line_address(addr, self.config.line_size)
        line = self._set_for(line_addr).get(line_addr)
        if line is not None and line.state is MESI.INVALID:
            return None
        return line

    def access(self, addr: int) -> CacheLine | None:
        """Lookup that also refreshes LRU recency on a hit."""
        line = self.lookup(addr)
        if line is not None:
            self._touch(line)
        return line

    def contains(self, addr: int) -> bool:
        """True if the line containing ``addr`` is resident and valid."""
        return self.lookup(addr) is not None

    # ------------------------------------------------------------------ fills

    def choose_victim(self, line_addr: int) -> Victim | None:
        """Return the line a fill of ``line_addr`` would displace, if any.

        Returns None when the target set still has a free way (or already
        holds the line).  Does not modify the cache.
        """
        line_addr = line_address(line_addr, self.config.line_size)
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set or len(cache_set) < self.config.associativity:
            return None
        victim = min(cache_set.values(), key=lambda ln: ln.lru_tick)
        return Victim(line_addr=victim.tag, dirty=victim.dirty)

    def fill(self, line_addr: int, state: MESI) -> Victim | None:
        """Install ``line_addr`` in ``state``; return the displaced victim.

        The caller is responsible for acting on the victim (writeback,
        back-invalidation of upper levels, metadata loss callbacks) *before*
        relying on the new line.
        """
        if state is MESI.INVALID:
            raise SimulationError("cannot fill a line in Invalid state")
        line_addr = line_address(line_addr, self.config.line_size)
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            raise SimulationError(
                f"{self.name}: fill of already-resident line 0x{line_addr:x}"
            )
        victim = self.choose_victim(line_addr)
        if victim is not None:
            del cache_set[victim.line_addr]
            if self._emitter.enabled:
                self._emitter.emit(
                    "cache.evict",
                    cache=self.name,
                    line=victim.line_addr,
                    dirty=victim.dirty,
                )
        self._tick += 1
        cache_set[line_addr] = CacheLine(
            tag=line_addr, state=state, lru_tick=self._tick
        )
        return victim

    # ------------------------------------------------------- state management

    def set_state(self, line_addr: int, state: MESI) -> None:
        """Change the MESI state of a resident line (or evict, for INVALID)."""
        line_addr = line_address(line_addr, self.config.line_size)
        cache_set = self._set_for(line_addr)
        line = cache_set.get(line_addr)
        if line is None:
            raise SimulationError(
                f"{self.name}: state change on absent line 0x{line_addr:x}"
            )
        if state is MESI.INVALID:
            del cache_set[line_addr]
        else:
            line.state = state

    def evict(self, line_addr: int) -> CacheLine:
        """Forcibly remove a resident line, returning its final contents."""
        line_addr = line_address(line_addr, self.config.line_size)
        cache_set = self._set_for(line_addr)
        line = cache_set.pop(line_addr, None)
        if line is None:
            raise SimulationError(
                f"{self.name}: eviction of absent line 0x{line_addr:x}"
            )
        if self._emitter.enabled:
            self._emitter.emit(
                "cache.evict", cache=self.name, line=line.tag, dirty=line.dirty
            )
        return line

    # ------------------------------------------------------------- inspection

    def resident_lines(self) -> Iterator[CacheLine]:
        """Iterate over every valid resident line (order unspecified)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def occupancy(self) -> int:
        """Number of valid resident lines."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.config.size_bytes}B, "
            f"{self.occupancy()}/{self.config.num_lines} lines)"
        )
