"""Cache-resident metadata tracking for hardware race detectors.

In HARD, the candidate set and LState of a line "are part of the data
content of the corresponding line" (Section 3.4): every cache copy of the
line carries them, they travel with coherence transfers, and they are lost
when the line leaves the hierarchy (Section 3.6).  The default
happens-before implementation stores its timestamps the same way.

:class:`CacheMetadataStore` models this faithfully and generically.  It is a
:class:`~repro.sim.coherence.MachineListener` that keeps one metadata object
per *holder* of a line — each core's L1 copy plus the L2 copy — and mirrors
every coherence event:

* fill from memory → fresh metadata (detector-supplied factory);
* fill from the L2 or another core → clone of the supplier's copy;
* L1 writeback → the L2 copy is refreshed from the core's copy;
* invalidation / eviction → that holder's copy disappears;
* L2 displacement → *all* record of the line disappears.

With HARD's update broadcast enabled (Figure 6), every copy of a line is
kept identical via :meth:`update_all_copies`; with the broadcast ablated,
copies diverge exactly as stale hardware copies would.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, TypeVar

from repro.common.errors import DetectorError
from repro.sim.coherence import FillSource, MachineListener, SourceKind

M = TypeVar("M")

#: Holder key for the shared L2's copy of a line.
L2_HOLDER = "l2"

Holder = Hashable  # an int core id, or L2_HOLDER


class CacheMetadataStore(MachineListener, Generic[M]):
    """Per-holder metadata copies for every line in the hierarchy."""

    def __init__(
        self,
        fresh: Callable[[int], M],
        clone: Callable[[M], M],
    ):
        """Create an empty store.

        Args:
            fresh: called with the line address when a line is fetched from
                memory; returns brand-new metadata (for HARD: all-ones
                BFVectors, Exclusive LState).
            clone: deep-copies a metadata object for a coherence transfer.
        """
        self._fresh = fresh
        self._clone = clone
        # line address -> holder -> metadata object
        self._lines: dict[int, dict[Holder, M]] = {}

    # ----------------------------------------------------------------- access

    def get(self, holder: Holder, line_addr: int) -> M | None:
        """The metadata object ``holder`` currently has for ``line_addr``."""
        per_holder = self._lines.get(line_addr)
        if per_holder is None:
            return None
        return per_holder.get(holder)

    def require(self, holder: Holder, line_addr: int) -> M:
        """Like :meth:`get` but raises if the copy is missing.

        A missing copy on the access path indicates the store was not
        attached to the machine before simulation started.
        """
        meta = self.get(holder, line_addr)
        if meta is None:
            raise DetectorError(
                f"no metadata copy of line 0x{line_addr:x} at holder {holder!r}"
            )
        return meta

    def holders_of(self, line_addr: int) -> list[Holder]:
        """All holders that currently have a copy of ``line_addr``."""
        return list(self._lines.get(line_addr, ()))

    def tracked_lines(self) -> list[int]:
        """All line addresses with at least one live copy."""
        return list(self._lines)

    def set(self, holder: Holder, line_addr: int, meta: M) -> None:
        """Replace one holder's copy (the holder must already have one)."""
        per_holder = self._lines.get(line_addr)
        if per_holder is None or holder not in per_holder:
            raise DetectorError(
                f"cannot update absent copy of 0x{line_addr:x} at {holder!r}"
            )
        per_holder[holder] = meta

    def update_all_copies(self, line_addr: int, meta: M) -> int:
        """Broadcast: make every live copy of the line equal to ``meta``.

        Returns the number of *other* copies refreshed (used by the HARD
        detector to charge bus broadcast traffic).  Each copy gets its own
        clone so later divergence (in ablation modes) stays possible.
        """
        per_holder = self._lines.get(line_addr)
        if per_holder is None:
            raise DetectorError(f"broadcast for untracked line 0x{line_addr:x}")
        for holder in per_holder:
            per_holder[holder] = self._clone(meta)
        return len(per_holder) - 1

    def update_everywhere(self, fn: Callable[[M], None]) -> int:
        """Apply ``fn`` in place to every copy of every line.

        Used by the barrier reset (Section 3.5), which sets the BFVectors of
        all cached lines back to all-ones.  Returns the number of copies
        touched.
        """
        touched = 0
        for per_holder in self._lines.values():
            for meta in per_holder.values():
                fn(meta)
                touched += 1
        return touched

    # ------------------------------------------------------ coherence mirror

    def on_fill(self, core: int, line_addr: int, source: FillSource) -> None:
        if source.kind is SourceKind.MEMORY:
            meta = self._fresh(line_addr)
            # The inclusive L2 received the line too; both copies start equal.
            self._lines[line_addr] = {
                L2_HOLDER: self._clone(meta),
                core: meta,
            }
            return
        if source.kind is SourceKind.L2:
            supplier: Holder = L2_HOLDER
        else:
            supplier = source.core
        origin = self.require(supplier, line_addr)
        self._lines[line_addr][core] = self._clone(origin)

    def on_writeback(self, core: int, line_addr: int) -> None:
        origin = self.require(core, line_addr)
        self._lines[line_addr][L2_HOLDER] = self._clone(origin)

    def on_l1_evict(self, core: int, line_addr: int, dirty: bool) -> None:
        self._drop(core, line_addr)

    def on_invalidate(self, core: int, line_addr: int) -> None:
        self._drop(core, line_addr)

    def on_l2_evict(self, line_addr: int) -> None:
        per_holder = self._lines.pop(line_addr, None)
        if per_holder is None:
            raise DetectorError(f"L2 evicted untracked line 0x{line_addr:x}")
        stragglers = [h for h in per_holder if h != L2_HOLDER]
        if stragglers:
            raise DetectorError(
                f"L2 evicted 0x{line_addr:x} while cores {stragglers} "
                "still held copies (inclusion violated)"
            )

    def _drop(self, core: int, line_addr: int) -> None:
        per_holder = self._lines.get(line_addr)
        if per_holder is None or core not in per_holder:
            raise DetectorError(
                f"dropping absent copy of 0x{line_addr:x} at core {core}"
            )
        del per_holder[core]


class SharedMetadataStore(MachineListener, Generic[M]):
    """One shared metadata object per line: the always-broadcast fast path.

    A detector that broadcasts *every* metadata update (our default
    happens-before keeps its access histories fully consistent across
    copies) makes all per-holder copies permanently identical — so storing
    one object per line is observationally equivalent to
    :class:`CacheMetadataStore` with an update-all after every access, and
    an order of magnitude cheaper (no cloning).  The line's metadata lives
    exactly as long as the line is anywhere in the hierarchy: fresh on a
    memory fill, dropped on L2 displacement (approximation 3 still holds).
    """

    def __init__(self, fresh: Callable[[int], M]):
        self._fresh = fresh
        self._lines: dict[int, M] = {}

    def get(self, holder: Holder, line_addr: int) -> M | None:
        """The line's (single, shared) metadata object, if tracked."""
        return self._lines.get(line_addr)

    def require(self, holder: Holder, line_addr: int) -> M:
        """Like :meth:`get` but raises if the line is untracked."""
        meta = self._lines.get(line_addr)
        if meta is None:
            raise DetectorError(f"no metadata for line 0x{line_addr:x}")
        return meta

    def tracked_lines(self) -> list[int]:
        """All line addresses with live metadata."""
        return list(self._lines)

    # ------------------------------------------------------ coherence mirror

    def on_fill(self, core: int, line_addr: int, source: FillSource) -> None:
        if source.kind is SourceKind.MEMORY:
            self._lines[line_addr] = self._fresh(line_addr)
        elif line_addr not in self._lines:
            raise DetectorError(
                f"transfer of untracked line 0x{line_addr:x} from {source}"
            )

    def on_l2_evict(self, line_addr: int) -> None:
        if self._lines.pop(line_addr, None) is None:
            raise DetectorError(f"L2 evicted untracked line 0x{line_addr:x}")
