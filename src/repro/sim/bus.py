"""Snoopy-bus traffic and cycle accounting.

The bus model does not arbitrate between concurrent requesters (the trace is
already a total order), it *accounts*: every transaction adds cycles and
byte counts to named counters, so that the Figure 8 overhead study can
attribute exactly how much of the slowdown comes from candidate-set traffic
versus baseline data traffic.

Since PR 10 the bus is one of two interchangeable **coherence fabrics**
(see :mod:`repro.sim.fabric`): :class:`Bus` is the paper's default snoopy
broadcast medium, and :class:`~repro.sim.fabric.DirectoryFabric` is the
Section 3.4 point-to-point alternative.  Both expose the same surface —
data moves, metadata publication, and the *scale hooks*
(:meth:`Bus.home_lookup`, :meth:`Bus.sharer_invalidations`,
:meth:`Bus.owner_forward`) the :class:`~repro.sim.machine.Machine` calls at
every coherence decision point.  On the snoopy bus the scale hooks are
strict no-ops (snooping *is* the broadcast — there is no indirection to
charge), which keeps the default 4-core machine bit-for-bit identical to
the pre-fabric model.

The metadata cost surface is captured by :class:`MetaCostModel`: a frozen
bundle of per-event constants and stat-key names consumed identically by
the scalar fabric methods, the engine's per-lane accounting
(:class:`~repro.engine.machineshare.LaneBus`) and the vectorized batch
reconstruction (``finish_batch``), so every engine path charges metadata
the same way on either fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import BusConfig
from repro.common.stats import StatCounters
from repro.obs.trace import NULL_EMITTER, TraceEmitter


@dataclass(frozen=True)
class MetaCostModel:
    """Constant per-event metadata costs and the stat keys they land in.

    Detector metadata publication has exactly two shapes: a *piggyback*
    (metadata riding a data transfer that is happening anyway) and an
    *update* (a standalone publication — the Figure 6 broadcast on the
    snoopy bus, a point-to-point home-node message on the directory
    fabric).  Both cost a constant number of cycles per event, which is
    what lets the batch kernels reconstruct the full accounting from
    occurrence counts alone.
    """

    piggyback_cycles: int
    piggyback_cycle_key: str
    update_cycles: int
    update_cycle_key: str
    update_count_key: str
    update_event: str
    metadata_bytes_key: str = "bus.bytes.metadata"
    update_control_bytes: int = 0
    control_bytes_key: str = "dir.bytes.control"


def snoopy_meta_model(config: BusConfig) -> MetaCostModel:
    """The snoopy bus's metadata costs (unchanged from the pre-fabric era)."""
    return MetaCostModel(
        piggyback_cycles=config.metadata_piggyback_cycles,
        piggyback_cycle_key="bus.cycles.metadata_piggyback",
        update_cycles=config.cycles_per_transaction + config.cycles_per_word,
        update_cycle_key="bus.cycles.metadata_broadcast",
        update_count_key="bus.transactions.metadata_broadcast",
        update_event="candidate.broadcast",
    )


class Bus:
    """Accounting model of the shared snoopy bus."""

    #: Fabric kind, mirrored from ``MachineConfig.coherence``.
    kind = "snoopy"

    def __init__(self, config: BusConfig, emitter: TraceEmitter | None = None):
        self.config = config
        self.stats = StatCounters()
        self._cycles = 0
        self._emitter = emitter if emitter is not None else NULL_EMITTER
        self.meta_model = snoopy_meta_model(config)

    @property
    def cycles(self) -> int:
        """Total bus cycles consumed so far."""
        return self._cycles

    def _spend(self, cycles: int, kind: str) -> int:
        self._cycles += cycles
        self.stats.add(f"bus.cycles.{kind}", cycles)
        self.stats.add(f"bus.transactions.{kind}")
        return cycles

    # ------------------------------------------------------------ data moves

    def line_transfer(self, line_size: int, kind: str) -> int:
        """Charge a full line transfer (fill, cache-to-cache, writeback)."""
        cycles = self.config.line_transfer_cycles(line_size)
        self.stats.add("bus.bytes.data", line_size)
        return self._spend(cycles, kind)

    def address_only(self, kind: str) -> int:
        """Charge an address-only transaction (upgrade, invalidation)."""
        return self._spend(self.config.cycles_per_transaction, kind)

    # ------------------------------------------------------------ scale hooks
    #
    # The machine calls these at every coherence decision point.  A snoopy
    # bus resolves them all by broadcast — every core snoops every address
    # phase for free — so they charge nothing here; the directory fabric
    # overrides them with home-node indirection, owner forwarding and
    # exact-sharer invalidation messages.

    def home_lookup(self, kind: str) -> int:
        """Locate the line's coherence state (no-op under snooping)."""
        return 0

    def sharer_invalidations(self, count: int) -> int:
        """Invalidate ``count`` sharer copies (broadcast: already snooped)."""
        return 0

    def owner_forward(self) -> int:
        """Forward a request to the owning core (broadcast: already heard)."""
        return 0

    # --------------------------------------------------- detector extensions

    def metadata_piggyback(self, meta_bits: int) -> int:
        """Charge metadata riding an existing data transfer (Section 3.4).

        The candidate set + LState add 18 bits per line; on a transfer that
        is already moving the line, the marginal cost is a fixed small
        number of cycles.  Identical on both fabrics: the metadata rides
        whatever response carries the line.
        """
        model = self.meta_model
        self.stats.add(model.metadata_bytes_key, (meta_bits + 7) // 8)
        cycles = model.piggyback_cycles
        self._cycles += cycles
        self.stats.add(model.piggyback_cycle_key, cycles)
        if self._emitter.enabled:
            self._emitter.emit("metadata.piggyback", bits=meta_bits)
        return cycles

    def metadata_broadcast(self, meta_bits: int) -> int:
        """Charge a standalone candidate-set publication.

        On the snoopy bus this is the Figure 6 broadcast (address phase
        plus one data word carrying the 18 metadata bits), sent when a
        processor recomputes the candidate set of a Shared line and the
        set changed.  The directory fabric replaces it with a
        point-to-point metadata writeback to the home node — same call
        site, different :class:`MetaCostModel`.
        """
        model = self.meta_model
        self.stats.add(model.metadata_bytes_key, (meta_bits + 7) // 8)
        if model.update_control_bytes:
            self.stats.add(model.control_bytes_key, model.update_control_bytes)
        if self._emitter.enabled:
            self._emitter.emit(model.update_event, bits=meta_bits)
        cycles = model.update_cycles
        self._cycles += cycles
        self.stats.add(model.update_cycle_key, cycles)
        self.stats.add(model.update_count_key)
        return cycles
