"""Snoopy-bus traffic and cycle accounting.

The bus model does not arbitrate between concurrent requesters (the trace is
already a total order), it *accounts*: every transaction adds cycles and
byte counts to named counters, so that the Figure 8 overhead study can
attribute exactly how much of the slowdown comes from candidate-set traffic
versus baseline data traffic.
"""

from __future__ import annotations

from repro.common.config import BusConfig
from repro.common.stats import StatCounters
from repro.obs.trace import NULL_EMITTER, TraceEmitter


class Bus:
    """Accounting model of the shared snoopy bus."""

    def __init__(self, config: BusConfig, emitter: TraceEmitter | None = None):
        self.config = config
        self.stats = StatCounters()
        self._cycles = 0
        self._emitter = emitter if emitter is not None else NULL_EMITTER

    @property
    def cycles(self) -> int:
        """Total bus cycles consumed so far."""
        return self._cycles

    def _spend(self, cycles: int, kind: str) -> int:
        self._cycles += cycles
        self.stats.add(f"bus.cycles.{kind}", cycles)
        self.stats.add(f"bus.transactions.{kind}")
        return cycles

    # ------------------------------------------------------------ data moves

    def line_transfer(self, line_size: int, kind: str) -> int:
        """Charge a full line transfer (fill, cache-to-cache, writeback)."""
        cycles = self.config.line_transfer_cycles(line_size)
        self.stats.add("bus.bytes.data", line_size)
        return self._spend(cycles, kind)

    def address_only(self, kind: str) -> int:
        """Charge an address-only transaction (upgrade, invalidation)."""
        return self._spend(self.config.cycles_per_transaction, kind)

    # --------------------------------------------------- detector extensions

    def metadata_piggyback(self, meta_bits: int) -> int:
        """Charge metadata riding an existing data transfer (Section 3.4).

        The candidate set + LState add 18 bits per line; on a transfer that
        is already moving the line, the marginal cost is a fixed small
        number of cycles.
        """
        self.stats.add("bus.bytes.metadata", (meta_bits + 7) // 8)
        cycles = self.config.metadata_piggyback_cycles
        self._cycles += cycles
        self.stats.add("bus.cycles.metadata_piggyback", cycles)
        if self._emitter.enabled:
            self._emitter.emit("metadata.piggyback", bits=meta_bits)
        return cycles

    def metadata_broadcast(self, meta_bits: int) -> int:
        """Charge a standalone candidate-set broadcast (Figure 6).

        Sent when a processor recomputes the candidate set of a line that is
        in Shared state and the set changed: address phase plus one data
        word carrying the 18 metadata bits.
        """
        self.stats.add("bus.bytes.metadata", (meta_bits + 7) // 8)
        if self._emitter.enabled:
            self._emitter.emit("candidate.broadcast", bits=meta_bits)
        cycles = self.config.cycles_per_transaction + self.config.cycles_per_word
        return self._spend(cycles, "metadata_broadcast")
