"""Coherence fabrics: the snoopy bus and the Section 3.4 directory.

The paper's default machine keeps its L1s coherent over a snoopy broadcast
bus, and Section 3.4 observes that the design — both the MESI address
phases and the Figure 6 candidate-set broadcasts — stops scaling as cores
grow, sketching a directory-based alternative where metadata lives at the
line's home node and every message is point-to-point.  This module makes
that choice a first-class strategy:

* :class:`~repro.sim.bus.Bus` (re-exported here as :data:`SnoopyBus`) is
  the broadcast fabric.  Its scale hooks are strict no-ops: snooping *is*
  the broadcast, so locating state, reaching the owner and invalidating
  sharers cost nothing beyond the address phases the machine already
  charges.  The default 4-core machine is therefore bit-for-bit identical
  to the pre-fabric model.
* :class:`DirectoryFabric` charges the indirection a real directory pays:
  a home-node lookup on every miss and upgrade (request + grant control
  messages), an extra forwarding hop when a dirty owner must supply the
  line, exact-sharer invalidation/ack pairs instead of a free broadcast,
  and a point-to-point metadata writeback to the home node in place of
  every Figure 6 broadcast.  All of it is cycle-accounted into ``dir.*``
  counters so the scaling exhibit can put broadcast traffic and directory
  traffic on the same axis.

Invalidation latency is charged as one parallel multicast round trip
(constant cycles) while messages and bytes scale with the actual sharer
count — the fan-out happens in parallel in hardware, but every message
still crosses the network.  Keeping the *cycle* costs of the metadata
operations constant per event is what lets the vectorized batch kernels
reconstruct fabric accounting from occurrence counts (see
:class:`~repro.sim.bus.MetaCostModel`); the variable per-sharer costs live
in the machine's data path, where the tape totals capture them exactly.
"""

from __future__ import annotations

from repro.common.config import BusConfig, DirectoryConfig, MachineConfig
from repro.obs.trace import TraceEmitter
from repro.sim.bus import Bus, MetaCostModel, snoopy_meta_model

#: Alias making the strategy explicit at registration sites.
SnoopyBus = Bus


def directory_meta_model(
    config: BusConfig, directory: DirectoryConfig
) -> MetaCostModel:
    """Metadata costs over the directory fabric.

    A piggyback rides the point-to-point data response exactly as it rode
    the bus transfer (same marginal cycles, same counters).  A standalone
    candidate-set publication becomes one metadata writeback to the home
    node: a single hop plus the directory update, with a control-message
    header on the wire — no other core hears it until it next fetches the
    line's metadata.
    """
    return MetaCostModel(
        piggyback_cycles=config.metadata_piggyback_cycles,
        piggyback_cycle_key="bus.cycles.metadata_piggyback",
        update_cycles=directory.hop_cycles + directory.lookup_cycles,
        update_cycle_key="dir.cycles.metadata_update",
        update_count_key="dir.messages.metadata_update",
        update_event="metadata.update",
        update_control_bytes=directory.control_bytes,
    )


class DirectoryFabric(Bus):
    """Point-to-point directory coherence (the Section 3.4 alternative).

    Subclasses :class:`Bus` for the data-move accounting (a line transfer
    costs the same cycles whether the medium is a bus or a network link)
    and overrides the scale hooks and the metadata publication path with
    home-node indirection.
    """

    kind = "directory"

    def __init__(
        self,
        config: BusConfig,
        directory: DirectoryConfig,
        emitter: TraceEmitter | None = None,
    ):
        super().__init__(config, emitter=emitter)
        self.directory = directory
        self.meta_model = directory_meta_model(config, directory)

    def _control(self, cycles: int, kind: str, messages: int) -> int:
        self._cycles += cycles
        self.stats.add(f"dir.cycles.{kind}", cycles)
        self.stats.add(f"dir.messages.{kind}", messages)
        self.stats.add(
            "dir.bytes.control", messages * self.directory.control_bytes
        )
        return cycles

    def home_lookup(self, kind: str) -> int:
        """Request + grant through the line's home node.

        Charged on every L1 miss and every upgrade: the requester asks the
        home node (one hop, one directory-state read) and receives a grant
        or forwarding decision (one message back).
        """
        d = self.directory
        return self._control(d.hop_cycles + d.lookup_cycles, "home_lookup", 2)

    def sharer_invalidations(self, count: int) -> int:
        """Multicast invalidations to the exact sharer list, gather acks.

        The home node knows precisely who holds the line, so ``count``
        invalidation messages go out and ``count`` acks come back — in
        parallel, so the latency is one round trip regardless of fan-out,
        while message and byte counts scale with the real sharer list.
        """
        if count <= 0:
            return 0
        return self._control(
            2 * self.directory.hop_cycles, "invalidations", 2 * count
        )

    def owner_forward(self) -> int:
        """Home node forwards the request to the dirty/exclusive owner."""
        return self._control(self.directory.hop_cycles, "owner_forward", 1)


def make_fabric(
    config: MachineConfig, emitter: TraceEmitter | None = None
) -> Bus:
    """Build the coherence fabric ``config.coherence`` names."""
    if config.coherence == "directory":
        return DirectoryFabric(config.bus, config.directory, emitter=emitter)
    return SnoopyBus(config.bus, emitter=emitter)


def meta_cost_model(config: MachineConfig) -> MetaCostModel:
    """The :class:`MetaCostModel` of ``config``'s fabric, without building it.

    The batch kernels' ``finish_batch`` reconstruction only has the machine
    configuration in hand; this keeps it in lockstep with what the scalar
    fabric charges.
    """
    if config.coherence == "directory":
        return directory_meta_model(config.bus, config.directory)
    return snoopy_meta_model(config.bus)
