"""The continuous performance observatory: ``BENCH_<name>.json`` artifacts.

Every benchmark in the repo — the drivers under ``benchmarks/`` and the
``repro bench`` CLI verb — emits its result through one structured schema,
so perf is comparable across commits, machines and CI runs:

* :class:`BenchResult` — one benchmark outcome: machine info, round count,
  per-phase timings (every round plus the min — min-of-rounds is the
  established least-noise estimator here), a counter snapshot (typically a
  :class:`~repro.obs.telemetry.FlightRecorder` snapshot's counters), and
  free-form extras;
* :func:`write_bench` / :func:`load_bench` — the shared writer (atomic
  :func:`os.replace`, so a killed benchmark never leaves a truncated
  artifact) and its validating loader;
* :func:`validate_bench` — the schema check CI and tests run on emitted
  artifacts;
* :func:`compare_bench` — per-phase regression detection between two
  artifacts; ``repro bench --compare OLD.json`` turns its verdict into an
  exit code, which is the perf-trend gate.  ``min_speedups`` inverts the
  gate for chosen phases: instead of "no slower than threshold", the new
  artifact must be at least N× *faster* — how CI holds the vectorized
  batch path to its speedup over the checked-in pre-columnar baseline.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ReproError
from repro.common.fsio import atomic_write_text

#: Bumped on any backwards-incompatible artifact change.
BENCH_SCHEMA_VERSION = 1

#: A phase must slow down by at least this fraction to count as a regression.
DEFAULT_REGRESSION_THRESHOLD = 0.10


class BenchSchemaError(ReproError):
    """A benchmark artifact does not conform to the schema."""


def machine_info() -> dict:
    """The host identity stamped into every benchmark artifact."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count() or 1,
    }


@dataclass
class BenchResult:
    """One structured benchmark outcome.

    ``phases`` maps a phase name to ``{"rounds_s": [...], "min_s": float}``;
    use :meth:`add_phase` to keep the two consistent.
    """

    name: str
    rounds: int
    machine: dict = field(default_factory=machine_info)
    phases: dict[str, dict] = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    schema_version: int = BENCH_SCHEMA_VERSION

    def add_phase(self, name: str, rounds_s: list[float]) -> None:
        """Record one phase's per-round wall times (min derived)."""
        if not rounds_s:
            raise BenchSchemaError(f"phase {name!r} needs at least one round")
        self.phases[name] = {
            "rounds_s": [round(s, 6) for s in rounds_s],
            "min_s": round(min(rounds_s), 6),
        }

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "rounds": self.rounds,
            "machine": dict(self.machine),
            "phases": {name: dict(entry) for name, entry in self.phases.items()},
            "counters": dict(self.counters),
            "extras": dict(self.extras),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        problems = validate_bench(data)
        if problems:
            raise BenchSchemaError("; ".join(problems))
        return cls(
            name=data["name"],
            rounds=data["rounds"],
            machine=dict(data["machine"]),
            phases={name: dict(entry) for name, entry in data["phases"].items()},
            counters=dict(data.get("counters", {})),
            extras=dict(data.get("extras", {})),
            schema_version=data["schema_version"],
        )


def validate_bench(data: object) -> list[str]:
    """Problems with one decoded benchmark artifact (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"artifact is not an object: {type(data).__name__}"]
    version = data.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version!r} != {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(data.get("name"), str) or not data.get("name"):
        problems.append("missing or empty 'name'")
    if not isinstance(data.get("rounds"), int) or data.get("rounds", 0) < 1:
        problems.append("'rounds' must be a positive integer")
    machine = data.get("machine")
    if not isinstance(machine, dict) or "platform" not in machine:
        problems.append("'machine' must be an object with a 'platform'")
    phases = data.get("phases")
    if not isinstance(phases, dict) or not phases:
        problems.append("'phases' must be a non-empty object")
    else:
        for name, entry in phases.items():
            if not isinstance(entry, dict):
                problems.append(f"phase {name!r} is not an object")
                continue
            rounds_s = entry.get("rounds_s")
            if not isinstance(rounds_s, list) or not rounds_s:
                problems.append(f"phase {name!r}: 'rounds_s' must be non-empty")
                continue
            if any(not isinstance(s, (int, float)) or s < 0 for s in rounds_s):
                problems.append(f"phase {name!r}: non-numeric round timing")
                continue
            min_s = entry.get("min_s")
            if not isinstance(min_s, (int, float)):
                problems.append(f"phase {name!r}: missing 'min_s'")
            elif abs(min_s - min(rounds_s)) > 1e-5:
                problems.append(
                    f"phase {name!r}: min_s {min_s} != min(rounds_s)"
                )
    if not isinstance(data.get("counters", {}), dict):
        problems.append("'counters' must be an object")
    if not isinstance(data.get("extras", {}), dict):
        problems.append("'extras' must be an object")
    return problems


def bench_path(name: str, directory: str | Path = ".") -> Path:
    """The canonical artifact path for one benchmark name."""
    return Path(directory) / f"BENCH_{name}.json"


def write_bench(result: BenchResult, path: str | Path) -> Path:
    """Validate and write one artifact atomically; returns the path."""
    data = result.to_dict()
    problems = validate_bench(data)
    if problems:
        raise BenchSchemaError(
            f"refusing to write invalid artifact: {'; '.join(problems)}"
        )
    return atomic_write_text(path, json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_bench(path: str | Path) -> BenchResult:
    """Load and validate one artifact."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchSchemaError(f"cannot load benchmark artifact {path}: {exc}") from exc
    try:
        return BenchResult.from_dict(data)
    except BenchSchemaError as exc:
        raise BenchSchemaError(f"{path}: {exc}") from exc


@dataclass
class PhaseDelta:
    """One phase's old-vs-new comparison."""

    phase: str
    old_min_s: float
    new_min_s: float

    @property
    def ratio(self) -> float:
        """new/old (1.0 = unchanged; inf when the old phase took no time)."""
        if self.old_min_s <= 0:
            return float("inf") if self.new_min_s > 0 else 1.0
        return self.new_min_s / self.old_min_s

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "old_min_s": self.old_min_s,
            "new_min_s": self.new_min_s,
            "ratio": round(self.ratio, 4),
        }


@dataclass
class BenchComparison:
    """Old-vs-new verdict over every shared phase."""

    old_name: str
    new_name: str
    threshold: float
    deltas: list[PhaseDelta]
    missing_phases: list[str]
    min_speedups: dict[str, float] = field(default_factory=dict)

    @property
    def regressions(self) -> list[PhaseDelta]:
        """Phases at least ``threshold`` slower than the old artifact.

        Phases under a ``min_speedups`` requirement are judged by
        :attr:`shortfalls` instead (a 3× mandate subsumes "not slower").
        """
        return [
            d
            for d in self.deltas
            if d.phase not in self.min_speedups
            and d.ratio >= 1.0 + self.threshold
        ]

    @property
    def shortfalls(self) -> list[PhaseDelta]:
        """Phases that failed their mandated minimum speedup.

        A phase with ``min_speedups[phase] = 3.0`` passes only when its new
        min is at most a third of the old min (``ratio <= 1/3``).
        """
        return [
            d
            for d in self.deltas
            if d.phase in self.min_speedups
            and d.ratio > 1.0 / self.min_speedups[d.phase]
        ]

    @property
    def ok(self) -> bool:
        """True when nothing regressed, fell short, or disappeared."""
        return (
            not self.regressions
            and not self.shortfalls
            and not self.missing_phases
        )

    def to_dict(self) -> dict:
        return {
            "old": self.old_name,
            "new": self.new_name,
            "threshold": self.threshold,
            "min_speedups": dict(self.min_speedups),
            "ok": self.ok,
            "phases": [d.to_dict() for d in self.deltas],
            "regressions": [d.to_dict() for d in self.regressions],
            "shortfalls": [d.to_dict() for d in self.shortfalls],
            "missing_phases": list(self.missing_phases),
        }

    def format(self) -> str:
        lines = [
            f"bench compare: {self.new_name} vs {self.old_name} "
            f"(regression threshold {100 * self.threshold:.0f}%)",
            f"  {'phase':<18}{'old':>10}{'new':>10}{'ratio':>8}",
        ]
        shortfalls = self.shortfalls
        for delta in self.deltas:
            if delta in shortfalls:
                required = self.min_speedups[delta.phase]
                flag = f"  <-- NEEDS >={required:g}x SPEEDUP"
            elif delta in self.regressions:
                flag = "  <-- REGRESSION"
            elif delta.phase in self.min_speedups:
                flag = f"  (>= {self.min_speedups[delta.phase]:g}x required: ok)"
            else:
                flag = ""
            lines.append(
                f"  {delta.phase:<18}{delta.old_min_s:>9.3f}s"
                f"{delta.new_min_s:>9.3f}s{delta.ratio:>7.2f}x{flag}"
            )
        for name in self.missing_phases:
            lines.append(f"  {name:<18}  present in old artifact, missing in new")
        lines.append("  verdict: " + ("OK" if self.ok else "REGRESSED"))
        return "\n".join(lines)


def compare_bench(
    old: BenchResult,
    new: BenchResult,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_speedups: dict[str, float] | None = None,
) -> BenchComparison:
    """Compare per-phase min-of-rounds timings of two artifacts.

    A phase regresses when its new min is at least ``threshold`` slower
    than its old min; phases present only in the new artifact are ignored
    (new instrumentation is not a regression), phases that *disappeared*
    are flagged.  ``min_speedups`` maps phase names to a mandated minimum
    speedup — those phases must be at least that many times *faster* than
    the old artifact (the batch-kernel CI gate), and are exempt from the
    ordinary regression test.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative: {threshold}")
    min_speedups = dict(min_speedups or {})
    for phase, factor in min_speedups.items():
        if factor <= 0:
            raise ValueError(f"min speedup for {phase!r} must be positive: {factor}")
    deltas = [
        PhaseDelta(
            phase=name,
            old_min_s=old.phases[name]["min_s"],
            new_min_s=new.phases[name]["min_s"],
        )
        for name in old.phases
        if name in new.phases
    ]
    missing = sorted(name for name in old.phases if name not in new.phases)
    return BenchComparison(
        old_name=old.name,
        new_name=new.name,
        threshold=threshold,
        deltas=deltas,
        missing_phases=missing,
        min_speedups=min_speedups,
    )
