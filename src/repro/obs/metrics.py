"""The metrics registry: counters, value histograms, and wall-clock timers.

:class:`MetricsRegistry` extends :class:`~repro.common.stats.StatCounters`
(so every existing counter idiom — ``add``, ``snapshot``, ``delta``,
``merge`` — keeps working) with two richer instruments:

* :class:`Histogram` — a distribution of observed values (candidate-set
  population counts, per-access simulated cycles, scheduler burst lengths).
  Values are stored as exact value→count pairs, which is both faithful and
  cheap for the small discrete domains the detectors produce.
* :class:`Timer` — accumulated wall-clock time of a named operation, driven
  through the :meth:`MetricsRegistry.time` context manager.

Everything snapshots to plain JSON-serialisable dicts so a
:class:`~repro.obs.runreport.RunReport` can embed a full metrics state.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterator

from repro.common.stats import StatCounters


class Histogram:
    """A distribution of observed numeric values (exact value counts)."""

    __slots__ = ("name", "count", "total", "min", "max", "_values")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._values: Counter = Counter()

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._values[value] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max
        self._values.update(other._values)

    def percentile(self, p: float) -> float | None:
        """The smallest observed value covering fraction ``p`` of the mass."""
        if not self.count:
            return None
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile fraction out of range: {p}")
        threshold = p * self.count
        running = 0
        for value in sorted(self._values):
            running += self._values[value]
            if running >= threshold:
                return value
        return self.max  # pragma: no cover - guarded by the loop above

    def values(self) -> dict:
        """The raw value→count mapping, sorted by value."""
        return dict(sorted(self._values.items()))

    def to_dict(self) -> dict:
        """A JSON-serialisable summary (counts keyed by stringified value)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "values": {str(k): v for k, v in sorted(self._values.items())},
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.2f}, "
            f"min={self.min}, max={self.max})"
        )


class Timer:
    """Accumulated wall-clock time of one named operation."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s: float | None = None
        self.max_s: float | None = None

    def observe(self, seconds: float) -> None:
        """Record one timed interval."""
        if seconds < 0:
            raise ValueError(f"timer intervals must be non-negative: {seconds}")
        self.count += 1
        self.total_s += seconds
        if self.min_s is None or seconds < self.min_s:
            self.min_s = seconds
        if self.max_s is None or seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        """Mean interval length in seconds (0.0 when empty)."""
        return self.total_s / self.count if self.count else 0.0

    def merge(self, other: "Timer") -> None:
        """Fold another timer's accumulated intervals into this one."""
        if not other.count:
            return
        self.count += other.count
        self.total_s += other.total_s
        if self.min_s is None or (other.min_s is not None and other.min_s < self.min_s):
            self.min_s = other.min_s
        if self.max_s is None or (other.max_s is not None and other.max_s > self.max_s):
            self.max_s = other.max_s

    def to_dict(self) -> dict:
        """A JSON-serialisable summary."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, n={self.count}, total={self.total_s:.4f}s)"


class MetricsRegistry(StatCounters):
    """Counters (inherited) plus named histograms and timers."""

    def __init__(self) -> None:
        super().__init__()
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, Timer] = {}

    # ------------------------------------------------------------ histograms

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name)
            self._histograms[name] = hist
        return hist

    def observe(self, name: str, value: float) -> None:
        """Shorthand: record ``value`` into histogram ``name``."""
        self.histogram(name).record(value)

    def histograms(self) -> Iterator[Histogram]:
        """All histograms, sorted by name."""
        return iter(h for _, h in sorted(self._histograms.items()))

    # ---------------------------------------------------------------- timers

    def timer(self, name: str) -> Timer:
        """The timer called ``name`` (created on first use)."""
        timer = self._timers.get(name)
        if timer is None:
            timer = Timer(name)
            self._timers[name] = timer
        return timer

    @contextmanager
    def time(self, name: str):
        """Context manager timing its body into timer ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timer(name).observe(time.perf_counter() - t0)

    def timers(self) -> Iterator[Timer]:
        """All timers, sorted by name."""
        return iter(t for _, t in sorted(self._timers.items()))

    # ----------------------------------------------------------------- merge

    def merge_registry(self, other: "MetricsRegistry") -> None:
        """Fold another registry — counters, histograms, timers — into this one.

        The parallel grid engine collects one registry shard per worker
        chunk and merges them all here; merging is associative and
        commutative, so the merged totals are independent of worker
        scheduling order.
        """
        self.merge(other)
        for name, hist in other._histograms.items():
            self.histogram(name).merge(hist)
        for name, timer in other._timers.items():
            self.timer(name).merge(timer)

    # -------------------------------------------------------------- snapshot

    def snapshot_all(self) -> dict:
        """Counters + histograms + timers as one JSON-serialisable dict."""
        return {
            "counters": self.snapshot(),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self._histograms.items())
            },
            "timers": {
                name: timer.to_dict()
                for name, timer in sorted(self._timers.items())
            },
        }

    def format(self, title: str = "metrics") -> str:
        """Human-readable rendering of counters, histograms and timers."""
        lines = [super().format(title)]
        if self._histograms:
            lines.append("histograms")
            for name, hist in sorted(self._histograms.items()):
                lines.append(
                    f"  {name}  n={hist.count:,} mean={hist.mean:.2f} "
                    f"min={hist.min} p50={hist.percentile(0.5)} "
                    f"p90={hist.percentile(0.9)} max={hist.max}"
                )
        if self._timers:
            lines.append("timers")
            for name, timer in sorted(self._timers.items()):
                lines.append(
                    f"  {name}  n={timer.count:,} total={timer.total_s:.4f}s "
                    f"mean={timer.mean_s:.6f}s"
                )
        return "\n".join(lines)
