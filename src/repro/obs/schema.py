"""The observability event schema, and its validator.

Every event emitted by the pipeline is a flat JSON object with a ``type``
discriminator, an optional wall-clock stamp ``t`` (seconds since the
emitter started), and a set of type-specific required fields listed in
:data:`EVENT_TYPES`.  ``docs/observability.md`` documents each type; the
round-trip test in ``tests/obs`` validates a real ``--trace-out`` file
against this table, so the schema and the emit sites cannot drift apart
silently.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.common.errors import ReproError

#: Bumped whenever an event type gains/loses required fields.
EVENT_SCHEMA_VERSION = 1

#: event type -> required field names (besides ``type`` and optional ``t``).
EVENT_TYPES: dict[str, frozenset[str]] = {
    # Spans: one per completed pipeline phase / timed region.
    "span": frozenset({"name", "wall_s"}),
    # A candidate set shrank: C(v) &= L(t) removed at least one bit.
    "lockset.refine": frozenset({"seq", "thread", "chunk", "before", "after"}),
    # A chunk moved through the Figure 2 LState machine.
    "lstate.transition": frozenset({"seq", "thread", "chunk", "from", "to"}),
    # The BFVector denotes the empty set while residual collision bits
    # remain set — the Bloom representation is visibly aliased.
    "bloom.collision": frozenset({"seq", "thread", "chunk", "vector"}),
    # A changed candidate set was broadcast to the other holders (Figure 6).
    "candidate.broadcast": frozenset({"bits"}),
    # Metadata rode an existing coherence transfer (Section 3.4).
    "metadata.piggyback": frozenset({"bits"}),
    # Barrier exit flash-reset every cached BFVector (Section 3.5).
    "barrier.reset": frozenset({"barrier", "copies"}),
    # An L2 displacement destroyed all record of a line (Section 3.6).
    "l2.displacement": frozenset({"line"}),
    # A cache-internal capacity eviction displaced a victim line.
    "cache.evict": frozenset({"cache", "line", "dirty"}),
    # A detector reported a dynamic race.
    "alarm": frozenset(
        {"detector", "seq", "thread", "addr", "size", "site", "is_write"}
    ),
    # One judged differential-fuzz case (clean or injected).
    "fuzz.case": frozenset({"seed", "case", "divergences", "unexplained"}),
}


class ObsSchemaError(ReproError):
    """An event record does not conform to the schema."""


def validate_event(record: object) -> list[str]:
    """Problems with one decoded event record (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"event is not an object: {record!r}"]
    etype = record.get("type")
    if not isinstance(etype, str):
        return [f"missing or non-string 'type': {etype!r}"]
    required = EVENT_TYPES.get(etype)
    if required is None:
        return [f"unknown event type {etype!r}"]
    for name in sorted(required):
        if name not in record:
            problems.append(f"{etype}: missing required field {name!r}")
    t = record.get("t")
    if t is not None and not isinstance(t, (int, float)):
        problems.append(f"{etype}: non-numeric timestamp {t!r}")
    return problems


def validate_jsonl(path: str | Path) -> Counter:
    """Validate a JSONL event file; return per-type event counts.

    Raises :class:`ObsSchemaError` naming the first offending line on any
    malformed JSON or schema violation.
    """
    counts: Counter[str] = Counter()
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObsSchemaError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            problems = validate_event(record)
            if problems:
                raise ObsSchemaError(f"{path}:{lineno}: " + "; ".join(problems))
            counts[record["type"]] += 1
    return counts
