"""``repro.obs`` — structured tracing, metrics, and per-phase profiling.

The observability layer threaded through the whole pipeline:

* :class:`~repro.obs.trace.TraceEmitter` and friends — typed JSONL events
  with a zero-cost null sink (:data:`~repro.obs.trace.NULL_EMITTER`);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters + histograms +
  timers;
* :class:`~repro.obs.profile.PhaseProfiler` — per-phase wall-clock timing
  with counter-delta attribution;
* :class:`~repro.obs.runreport.RunReport` — the machine-readable artifact
  of one run;
* :class:`~repro.obs.telemetry.FlightRecorder` — sampled engine telemetry
  (per-core step time, lane dedup, sync density, flamegraph frames);
* :mod:`repro.obs.perf` and :mod:`repro.obs.export` — the continuous
  performance observatory: the ``BENCH_<name>.json`` schema/writer/compare
  and the Prometheus-text + JSON metrics exporters;
* :class:`Observability` — the bundle detectors, the simulator and the
  runtime accept.  ``Observability()`` with no arguments is the *disabled*
  configuration: hot paths see ``active == False`` and skip all event and
  metric construction behind one precomputed boolean.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry, Timer
from repro.obs.profile import PhaseProfiler, PhaseRecord
from repro.obs.runreport import (
    RUNREPORT_SCHEMA_VERSION,
    RunReport,
    cycles_entry,
    overhead_entry,
)
from repro.obs.schema import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    ObsSchemaError,
    validate_event,
    validate_jsonl,
)
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    FlightRecorder,
)
from repro.obs.trace import (
    NULL_EMITTER,
    CountingEmitter,
    JsonlEmitter,
    NullEmitter,
    RecordingEmitter,
    TraceEmitter,
    emit_alarm,
)


class Observability:
    """The observability bundle one pipeline run threads everywhere.

    Attributes:
        emitter: where typed events go (defaults to the null sink).
        metrics: the run's metrics registry.
        collect_metrics: record per-event metrics even when tracing is off
            (``repro run --metrics``).
        telemetry: the optional engine flight recorder
            (:class:`~repro.obs.telemetry.FlightRecorder`).  Unlike the
            emitter, telemetry is *sampled* — the engine pays one countdown
            per stepped event — so it does not flip :attr:`active` and the
            detectors' per-event instrumentation stays off.
    """

    __slots__ = ("emitter", "metrics", "collect_metrics", "telemetry")

    def __init__(
        self,
        emitter: TraceEmitter | None = None,
        metrics: MetricsRegistry | None = None,
        collect_metrics: bool = False,
        telemetry: "FlightRecorder | None" = None,
    ):
        self.emitter = emitter if emitter is not None else NULL_EMITTER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.collect_metrics = collect_metrics
        self.telemetry = telemetry

    @property
    def active(self) -> bool:
        """True when per-event instrumentation should run at all."""
        return self.collect_metrics or self.emitter.enabled

    def close(self) -> None:
        """Close the underlying emitter (flushes a JSONL file)."""
        self.emitter.close()


__all__ = [
    "Observability",
    "TraceEmitter",
    "NullEmitter",
    "NULL_EMITTER",
    "CountingEmitter",
    "JsonlEmitter",
    "RecordingEmitter",
    "emit_alarm",
    "MetricsRegistry",
    "Histogram",
    "Timer",
    "FlightRecorder",
    "TELEMETRY_SCHEMA_VERSION",
    "PhaseProfiler",
    "PhaseRecord",
    "RunReport",
    "RUNREPORT_SCHEMA_VERSION",
    "cycles_entry",
    "overhead_entry",
    "EVENT_TYPES",
    "EVENT_SCHEMA_VERSION",
    "ObsSchemaError",
    "validate_event",
    "validate_jsonl",
]
