"""Structured trace emitters: typed JSONL events with a zero-cost null sink.

A :class:`TraceEmitter` receives *typed* events — spans for pipeline phases,
point events for detector internals (lockset refinements, LState
transitions, Bloom-collision detections, candidate-set broadcasts, barrier
resets, L2 displacements, alarms).  Three implementations:

* :data:`NULL_EMITTER` — ``enabled`` is False and every hook is a no-op; hot
  paths check one precomputed boolean and skip all event construction, so a
  disabled emitter costs nothing measurable (the overhead benchmark in
  ``benchmarks/test_obs_overhead.py`` enforces <5%);
* :class:`CountingEmitter` — counts events per type, discarding payloads
  (drives ``repro profile``'s top-N event table);
* :class:`JsonlEmitter` — writes one compact JSON object per line, stamped
  with seconds-since-start; the schema lives in :mod:`repro.obs.schema`.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from contextlib import contextmanager
from pathlib import Path
from typing import IO


class TraceEmitter:
    """Base emitter: disabled, event-free, but span-capable.

    Enabled emitters stamp every ``span`` event with a hierarchical id:
    top-level spans are numbered ``"1"``, ``"2"``, … in open order, and a
    span opened inside another gets its parent's id plus a child ordinal
    (``"2.1"``, ``"2.1.3"``).  The ``parent`` field repeats the enclosing
    span's id (``None`` at top level), so consumers can rebuild the span
    tree — and a collapsed flamegraph — from a flat JSONL stream even
    though spans are emitted on *exit* (children before parents).
    """

    #: Hot paths gate all event construction on this flag.
    enabled: bool = False

    def emit(self, etype: str, **fields) -> None:
        """Record one typed event (no-op unless overridden)."""

    def _open_span(self) -> str:
        """Push a new span frame; returns its hierarchical id."""
        # Lazily initialised so the stateless shared NULL_EMITTER (which
        # never calls this) stays attribute-free and subclasses need no
        # cooperative __init__.
        stack = getattr(self, "_span_stack", None)
        if stack is None:
            stack = self._span_stack = [["", 0]]
        parent = stack[-1]
        parent[1] += 1
        span_id = f"{parent[0]}.{parent[1]}" if parent[0] else str(parent[1])
        stack.append([span_id, 0])
        return span_id

    def _close_span(self) -> str | None:
        """Pop the current span frame; returns the parent id (or None)."""
        stack = self._span_stack
        stack.pop()
        return stack[-1][0] or None

    @contextmanager
    def span(self, name: str, **attrs):
        """Time the body and emit a ``span`` event on exit (if enabled)."""
        if not self.enabled:
            yield
            return
        span_id = self._open_span()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            parent = self._close_span()
            self.emit(
                "span",
                name=name,
                wall_s=round(time.perf_counter() - t0, 6),
                id=span_id,
                parent=parent,
                **attrs,
            )

    def close(self) -> None:
        """Release any underlying resource (no-op by default)."""


class NullEmitter(TraceEmitter):
    """The zero-cost disabled sink."""


#: Module-wide shared null sink; safe because it is stateless.
NULL_EMITTER = NullEmitter()


class CountingEmitter(TraceEmitter):
    """Counts events per type without storing payloads."""

    enabled = True

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()

    def emit(self, etype: str, **fields) -> None:
        self.counts[etype] += 1

    @property
    def total(self) -> int:
        """Total events seen across all types."""
        return sum(self.counts.values())


class RecordingEmitter(TraceEmitter):
    """Keeps selected events in memory for programmatic inspection.

    The differential-fuzzing oracle uses this to verify its divergence
    classifications against the detector's own evidence stream (e.g. that a
    missed detection classified as metadata loss really coincides with an
    ``l2.displacement`` of the victim line).  Pass ``types`` to keep only
    the event types you need — detector runs emit one event per metadata
    mutation, so recording everything on a long trace is memory-hungry.
    """

    enabled = True

    def __init__(self, types: frozenset[str] | set[str] | None = None):
        self._types = frozenset(types) if types is not None else None
        self.events: list[tuple[str, dict]] = []

    def emit(self, etype: str, **fields) -> None:
        if self._types is None or etype in self._types:
            self.events.append((etype, fields))

    def by_type(self, etype: str) -> list[dict]:
        """The payloads of every recorded event of one type, in order."""
        return [fields for kind, fields in self.events if kind == etype]


def emit_alarm(emitter: TraceEmitter, report) -> None:
    """Emit the canonical ``alarm`` event for one RaceReport-shaped record."""
    emitter.emit(
        "alarm",
        detector=report.detector,
        seq=report.seq,
        thread=report.thread_id,
        addr=report.addr,
        size=report.size,
        site=str(report.site),
        is_write=report.is_write,
        detail=report.detail,
    )


class JsonlEmitter(TraceEmitter):
    """Writes events as JSON Lines to a text stream."""

    enabled = True

    def __init__(self, stream: IO[str]):
        self._stream = stream
        self._owns_stream = False
        self._t0 = time.perf_counter()
        self.counts: Counter[str] = Counter()

    @classmethod
    def to_path(cls, path: str | Path) -> "JsonlEmitter":
        """An emitter writing to ``path`` (file closed by :meth:`close`)."""
        emitter = cls(open(path, "w", encoding="utf-8"))
        emitter._owns_stream = True
        return emitter

    def emit(self, etype: str, **fields) -> None:
        record = {"type": etype, "t": round(time.perf_counter() - self._t0, 6)}
        record.update(fields)
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.counts[etype] += 1

    @property
    def total(self) -> int:
        """Total events written."""
        return sum(self.counts.values())

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
