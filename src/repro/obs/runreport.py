"""The machine-readable run report: one JSON object per pipeline run.

A :class:`RunReport` is the single structured artifact of ``repro run``:
workload identity and signature, detection verdict, cycle/overhead
accounting, per-phase profile, metrics snapshot, and (when tracing was on)
per-type event counts.  ``repro run --json`` prints it; the benchmarks and
``harness.tables`` consume its entries instead of ad-hoc dicts, so every
consumer sees the same field names.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.common.fsio import atomic_write_text

#: Bumped on any backwards-incompatible field change.
RUNREPORT_SCHEMA_VERSION = 1


@dataclass
class RunReport:
    """Everything one observed pipeline run produced."""

    app: str
    detector: str
    workload_seed: int = 0
    schedule_seed: int = 0
    bug_seed: int | None = None
    #: Injected-bug ground truth: None on a clean run, else a small dict.
    bug: dict | None = None
    trace_events: int = 0
    #: ``detected`` is None on a clean run (nothing to detect).
    verdict: dict = field(default_factory=dict)
    cycles: dict = field(default_factory=dict)
    #: Workload signature from :mod:`repro.harness.tracestats`.
    workload: dict = field(default_factory=dict)
    phases: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)
    #: Per-type trace-event counts (empty when tracing was disabled).
    event_counts: dict = field(default_factory=dict)
    #: Wall-clock throughput of the detect phase.
    throughput: dict = field(default_factory=dict)
    #: Harness cache counters (``harness.*``): trace-memo LRU hits, misses
    #: and evictions, on-disk trace/verdict cache hits, traces built.
    cache: dict = field(default_factory=dict)
    #: Flight-recorder snapshot (empty when telemetry was off).
    telemetry: dict = field(default_factory=dict)
    schema_version: int = RUNREPORT_SCHEMA_VERSION

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable)."""
        return asdict(self)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a single JSON object."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str | Path) -> Path:
        """Write the report atomically (the TraceCache write protocol)."""
        return atomic_write_text(path, self.to_json(indent=2) + "\n")

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def overhead_fraction(self) -> float:
        """Detector overhead over the baseline machine (Figure 8 quantity)."""
        return float(self.cycles.get("overhead_fraction", 0.0))


def cycles_entry(total: int, detector_extra: int) -> dict:
    """The report's ``cycles`` block from the two ledger totals."""
    baseline = total - detector_extra
    fraction = detector_extra / baseline if baseline > 0 else 0.0
    return {
        "total": total,
        "detector_extra": detector_extra,
        "baseline": baseline,
        "overhead_fraction": fraction,
    }


def overhead_entry(total: int, detector_extra: int) -> dict:
    """A Figure 8 data row (shared by tables, benchmarks and reports)."""
    entry = cycles_entry(total, detector_extra)
    return {
        "overhead_pct": 100.0 * entry["overhead_fraction"],
        "cycles": total,
        "extra_cycles": detector_extra,
    }
