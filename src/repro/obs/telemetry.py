"""The engine flight recorder: cheap, sampled telemetry of one engine pass.

A :class:`FlightRecorder` answers "where does engine time actually go"
without paying per-event instrumentation cost.  It is grounded in the
sampling literature the ROADMAP points at ("Dynamic Race Detection with
O(1) Samples", HardRace's selective monitoring): the hot loop pays one
integer countdown per stepped event, and only every
:attr:`~FlightRecorder.sample_period`-th event is individually timed.
Everything else is derived:

* **per-core step time** — the sampled mean step latency scaled by the
  stepped-event count (exact when the engine is already tracing);
* **events/sec per core** — stepped events over that estimated wall time;
* **lane dedup hit ratio** — machine accesses the shared
  :class:`~repro.engine.machineshare.MachineGroup` replay performed once
  instead of once per member;
* **sync-point density** — locks/unlocks/barriers per 1k trace events,
  from a strided census of the trace (stride
  :attr:`~FlightRecorder.census_stride`, so the census touches ~1.5% of
  events);
* **per-phase wall time** — hierarchical :meth:`frame` regions that also
  power the collapsed-stack (flamegraph-compatible) dump.

The recorder rides the :class:`~repro.obs.Observability` bundle as its
``telemetry`` attribute; :class:`~repro.engine.EngineSession` switches to
its sampled walk variants when one is present.  Recorders merge
associatively (:meth:`merge`), so parallel grid workers can each carry one
and fan their telemetry back in, exactly like
:class:`~repro.obs.metrics.MetricsRegistry` shards.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.common.events import OpKind
from repro.common.fsio import atomic_write_text
from repro.obs.metrics import MetricsRegistry

#: Bumped on any backwards-incompatible change to :meth:`FlightRecorder.snapshot`.
TELEMETRY_SCHEMA_VERSION = 1

#: One stepped event in this many is individually timed.
DEFAULT_SAMPLE_PERIOD = 512

#: The op-kind census reads one trace event in this many.
DEFAULT_CENSUS_STRIDE = 64

#: Op kinds that are synchronization points (the HARD hot-path events).
SYNC_KINDS = (OpKind.LOCK, OpKind.UNLOCK, OpKind.BARRIER)


class FlightRecorder:
    """Sampled counters, per-core walk estimates, and hierarchical frames.

    Args:
        sample_period: time one stepped event in this many (>= 1; 1 times
            every step, which is exact but no longer cheap).
        census_stride: read one trace event in this many for the op-kind
            census (>= 1).
        registry: the metrics registry counters land in; a fresh private
            registry by default.
    """

    def __init__(
        self,
        sample_period: int = DEFAULT_SAMPLE_PERIOD,
        census_stride: int = DEFAULT_CENSUS_STRIDE,
        registry: MetricsRegistry | None = None,
    ):
        if sample_period < 1:
            raise ValueError(f"sample_period must be >= 1: {sample_period}")
        if census_stride < 1:
            raise ValueError(f"census_stride must be >= 1: {census_stride}")
        self.sample_period = sample_period
        self.census_stride = census_stride
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Per-core walk aggregates, keyed by core name.
        self.cores: dict[str, dict] = {}
        #: Cumulative wall seconds per frame path (flamegraph stacks).
        self.frames: dict[tuple[str, ...], float] = {}
        self._frame_stack: list[str] = []

    # ------------------------------------------------------------ frames

    @contextmanager
    def frame(self, name: str):
        """Time the body as one frame nested under the current frame path."""
        self._frame_stack.append(name)
        path = tuple(self._frame_stack)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self._frame_stack.pop()
            self.record_frame(path, time.perf_counter() - t0)

    def record_frame(self, path: tuple[str, ...], seconds: float) -> None:
        """Accumulate ``seconds`` of wall time on one frame path."""
        if seconds < 0:
            raise ValueError(f"frame durations must be non-negative: {seconds}")
        self.frames[path] = self.frames.get(path, 0.0) + seconds

    def collapsed(self) -> str:
        """The frames as flamegraph collapsed-stack lines.

        One line per frame path — ``a;b;c <microseconds>`` — carrying the
        frame's *self* time (its total minus its direct children's totals),
        which is the semantics ``flamegraph.pl`` / speedscope expect.
        """
        children: dict[tuple[str, ...], float] = {}
        for path, seconds in self.frames.items():
            if len(path) > 1:
                parent = path[:-1]
                children[parent] = children.get(parent, 0.0) + seconds
        lines = []
        for path in sorted(self.frames):
            self_s = max(0.0, self.frames[path] - children.get(path, 0.0))
            lines.append(f"{';'.join(path)} {round(self_s * 1e6)}")
        return "\n".join(lines)

    def write_flame(self, path) -> None:
        """Write the collapsed stacks to ``path`` (atomic replace)."""
        atomic_write_text(path, self.collapsed() + "\n")

    # ------------------------------------------------------------- walks

    def observe_trace(self, trace) -> dict:
        """Strided op-kind census of one trace (sync density, access mix).

        Reads one event in :attr:`census_stride` and scales the counts, so
        the census cost is a fixed small fraction of one trace walk.  The
        estimates land in ``telemetry.trace.*`` counters — ``snapshot``
        derives the per-1k sync density from them — and come back as a
        dict (op-kind value → estimated count, plus ``"events"``) for the
        caller's own arithmetic.

        ``trace`` may be a :class:`~repro.common.events.Trace` or a
        :class:`~repro.common.coltrace.ColumnarTrace`; a trace carrying a
        memoized columnar encoding is censused straight off the packed
        ``kind`` column (same stride, same counts, no event objects).
        """
        from repro.common.coltrace import ColumnarTrace, kind_of_code

        events = len(trace)
        estimates: dict[str, int] = {"events": events}
        if not events:
            return estimates
        cols = (
            trace
            if isinstance(trace, ColumnarTrace)
            else getattr(trace, "_columnar", None)
        )
        counts: dict[OpKind, int] = {}
        if cols is not None:
            sampled = cols.kind[:: self.census_stride]
            for code in sampled:
                kind = kind_of_code(code)
                counts[kind] = counts.get(kind, 0) + 1
        else:
            sampled = trace.events[:: self.census_stride]
            for event in sampled:
                kind = event.op.kind
                counts[kind] = counts.get(kind, 0) + 1
        scale = events / len(sampled)
        registry = self.registry
        registry.add("telemetry.trace.events", events)
        registry.add("telemetry.trace.census_samples", len(sampled))
        sync = 0
        for kind, count in counts.items():
            estimate = round(count * scale)
            estimates[kind.value] = estimate
            registry.add(f"telemetry.trace.kind.{kind.value}", estimate)
            if kind in SYNC_KINDS:
                sync += estimate
        registry.add("telemetry.trace.sync_points", sync)
        return estimates

    def record_core_walk(
        self, name: str, stepped: int, sampled_s: float, samples: int
    ) -> None:
        """Fold one core's (possibly sampled) walk into the aggregates.

        ``stepped`` is how many events the core's ``step`` consumed,
        ``samples`` how many of them were individually timed, ``sampled_s``
        their summed wall time.  ``samples == stepped`` means the timing
        was exact (the engine's traced walk).
        """
        entry = self.cores.setdefault(
            name,
            {"stepped": 0, "samples": 0, "sampled_s": 0.0, "est_s": 0.0, "walks": 0},
        )
        entry["stepped"] += stepped
        entry["samples"] += samples
        entry["sampled_s"] += sampled_s
        entry["walks"] += 1
        est = sampled_s / samples * stepped if samples else 0.0
        entry["est_s"] += est
        if samples:
            self.registry.observe(
                "telemetry.step_us", sampled_s / samples * 1e6
            )
        self.record_frame(("engine", "walk", f"core.{name}"), est)

    def record_walk(self, wall_s: float) -> None:
        """Record one whole engine walk (all cores, one trace pass)."""
        self.registry.add("telemetry.engine.walks")
        self.registry.timer("telemetry.engine.walk").observe(wall_s)
        self.record_frame(("engine", "walk"), wall_s)

    def record_group(self, members: int, shared_accesses: int) -> None:
        """Record one shared-machine group's deduplication win.

        ``shared_accesses`` machine accesses were performed once on the
        shared replay; without sharing, each of the other ``members - 1``
        lanes would have replayed them too.
        """
        if members < 1:
            raise ValueError(f"a machine group has at least one member: {members}")
        registry = self.registry
        registry.add("telemetry.lane.groups")
        registry.add("telemetry.lane.members", members)
        registry.add("telemetry.lane.shared_accesses", shared_accesses)
        registry.add("telemetry.lane.dedup_hits", shared_accesses * (members - 1))

    # ------------------------------------------------------------- merge

    def merge(self, other: "FlightRecorder") -> None:
        """Fold another recorder in (associative and commutative)."""
        self.registry.merge_registry(other.registry)
        for name, entry in other.cores.items():
            mine = self.cores.setdefault(
                name,
                {"stepped": 0, "samples": 0, "sampled_s": 0.0, "est_s": 0.0, "walks": 0},
            )
            for key, value in entry.items():
                mine[key] += value
        for path, seconds in other.frames.items():
            # Not record_frame: merged frames were already accounted once.
            self.frames[path] = self.frames.get(path, 0.0) + seconds

    # ---------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """The recorder's state as one JSON-serialisable dict.

        Raw counters plus the derived quantities the tentpole questions
        need: per-core events/sec and estimated step time, the lane dedup
        hit ratio, sync-point density per 1k events, and the frame table.
        """
        counters = self.registry.snapshot()
        events = counters.get("telemetry.trace.events", 0)
        sync = counters.get("telemetry.trace.sync_points", 0)
        members = counters.get("telemetry.lane.members", 0)
        dedup_hits = counters.get("telemetry.lane.dedup_hits", 0)
        shared = counters.get("telemetry.lane.shared_accesses", 0)
        would_be = shared + dedup_hits
        cores = {}
        for name, entry in sorted(self.cores.items()):
            est_s = entry["est_s"]
            cores[name] = {
                "stepped": entry["stepped"],
                "samples": entry["samples"],
                "walks": entry["walks"],
                "est_wall_s": round(est_s, 6),
                "est_step_us": round(est_s / entry["stepped"] * 1e6, 3)
                if entry["stepped"]
                else 0.0,
                "events_per_s": round(entry["stepped"] / est_s, 1) if est_s else 0.0,
            }
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "sample_period": self.sample_period,
            "census_stride": self.census_stride,
            "counters": counters,
            "cores": cores,
            "derived": {
                "sync_density_per_1k": round(1000.0 * sync / events, 3)
                if events
                else 0.0,
                "lane_dedup_hit_ratio": round(dedup_hits / would_be, 4)
                if would_be
                else 0.0,
                "lane_mean_group_size": round(
                    members / counters.get("telemetry.lane.groups", 1), 2
                )
                if members
                else 0.0,
            },
            "frames": {
                ";".join(path): round(seconds, 6)
                for path, seconds in sorted(self.frames.items())
            },
            "histograms": {
                hist.name: hist.to_dict() for hist in self.registry.histograms()
            },
            "timers": {
                timer.name: timer.to_dict() for timer in self.registry.timers()
            },
        }

    def format(self) -> str:
        """A human-readable rendering of the snapshot."""
        snap = self.snapshot()
        lines = ["flight recorder"]
        derived = snap["derived"]
        lines.append(
            f"  sync density: {derived['sync_density_per_1k']}/1k events, "
            f"lane dedup hit ratio: {derived['lane_dedup_hit_ratio']}"
        )
        for name, core in snap["cores"].items():
            lines.append(
                f"  core {name}: {core['events_per_s']:,.0f} events/s "
                f"({core['est_step_us']}us/step, "
                f"{core['stepped']:,} stepped, {core['samples']:,} sampled)"
            )
        for path, seconds in snap["frames"].items():
            lines.append(f"  frame {path}: {seconds:.4f}s")
        return "\n".join(lines)
