"""Metrics exporters: Prometheus text format and JSON.

The future streaming service (ROADMAP item 2) needs a ``/metrics``
endpoint; these functions give it one for free by rendering any
:class:`~repro.obs.metrics.MetricsRegistry` — including a
:class:`~repro.obs.telemetry.FlightRecorder`'s registry — in the two
formats monitoring stacks actually scrape:

* :func:`to_prometheus` — the Prometheus text exposition format (0.0.4):
  counters as ``counter``, timers as ``_seconds_total``/``_count`` pairs,
  histograms as quantile-labelled ``summary`` families;
* :func:`to_json` — the registry's full snapshot under a schema-versioned
  envelope.

Both have ``write_*`` companions using the repo-wide atomic write path, so
a scraped-from-disk deployment never reads a torn file.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.common.fsio import atomic_write_text
from repro.obs.metrics import MetricsRegistry

#: Bumped on any backwards-incompatible change to the JSON envelope.
METRICS_EXPORT_SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name for one registry key.

    Dots (the registry's namespace separator) and any other illegal
    characters become underscores; the ``prefix`` namespaces the whole
    toolkit's metrics in a shared scrape.
    """
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return f"{prefix}_{sanitized}" if prefix else sanitized


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []

    for name, value in registry.items():
        metric = metric_name(name, prefix)
        lines.append(f"# HELP {metric} Counter {name!r}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    for hist in registry.histograms():
        metric = metric_name(hist.name, prefix)
        lines.append(f"# HELP {metric} Histogram {hist.name!r}")
        lines.append(f"# TYPE {metric} summary")
        for quantile in (0.5, 0.9, 0.99):
            value = hist.percentile(quantile)
            if value is not None:
                lines.append(f'{metric}{{quantile="{quantile}"}} {value}')
        lines.append(f"{metric}_sum {hist.total}")
        lines.append(f"{metric}_count {hist.count}")

    for timer in registry.timers():
        metric = metric_name(timer.name, prefix)
        lines.append(f"# HELP {metric}_seconds Timer {timer.name!r}")
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total {timer.total_s}")
        lines.append(f"# TYPE {metric}_count counter")
        lines.append(f"{metric}_count {timer.count}")

    return "\n".join(lines) + "\n" if lines else ""


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """Render a registry's full snapshot as one schema-versioned JSON object."""
    return json.dumps(
        {
            "schema_version": METRICS_EXPORT_SCHEMA_VERSION,
            **registry.snapshot_all(),
        },
        indent=indent,
        sort_keys=True,
    )


def write_prometheus(
    registry: MetricsRegistry, path: str | Path, prefix: str = "repro"
) -> Path:
    """Write the Prometheus rendering atomically; returns the path."""
    return atomic_write_text(path, to_prometheus(registry, prefix))


def write_json(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the JSON rendering atomically; returns the path."""
    return atomic_write_text(path, to_json(registry) + "\n")
