"""Per-phase profiling: wall-clock timing with counter-delta attribution.

A :class:`PhaseProfiler` wraps the pipeline's phases (workload build,
interleave, characterize, detector run) in timed regions.  Each phase may
attach a counter delta — the difference of a :class:`StatCounters` snapshot
taken around the phase — so a profile attributes not just *time* but *what
happened* (accesses, broadcasts, resets) to each phase.  ``repro profile``
renders the result; :class:`~repro.obs.runreport.RunReport` embeds it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.trace import NULL_EMITTER, TraceEmitter


@dataclass
class PhaseRecord:
    """One completed phase: name, wall time, and attributed activity."""

    name: str
    wall_s: float = 0.0
    counters_delta: dict[str, int] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable form for the run report."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "counters_delta": dict(self.counters_delta),
            "extras": dict(self.extras),
        }


class PhaseProfiler:
    """Collects :class:`PhaseRecord` objects for a sequence of phases."""

    def __init__(self, emitter: TraceEmitter | None = None):
        self.records: list[PhaseRecord] = []
        self._emitter = emitter if emitter is not None else NULL_EMITTER

    @contextmanager
    def phase(self, name: str, **extras):
        """Time the body as one phase; yields the mutable record.

        The caller may fill ``record.counters_delta`` and ``record.extras``
        inside the body (e.g. with a detector-run stats snapshot); the wall
        time is stamped on exit and a ``span`` event is emitted when tracing
        is enabled.
        """
        record = PhaseRecord(name=name, extras=dict(extras))
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_s = time.perf_counter() - t0
            self.records.append(record)
            if self._emitter.enabled:
                self._emitter.emit(
                    "span", name=f"phase.{name}", wall_s=round(record.wall_s, 6)
                )

    @property
    def total_wall_s(self) -> float:
        """Sum of all recorded phase durations."""
        return sum(record.wall_s for record in self.records)

    def to_dicts(self) -> list[dict]:
        """All records in JSON-serialisable form, in execution order."""
        return [record.to_dict() for record in self.records]

    def format(self, top_counters: int = 3) -> str:
        """A per-phase breakdown table with top counter attribution."""
        total = self.total_wall_s
        lines = [
            "phase breakdown",
            f"  {'phase':<14}{'wall':>10}{'share':>8}  activity",
        ]
        for record in self.records:
            share = 100.0 * record.wall_s / total if total > 0 else 0.0
            top = sorted(
                record.counters_delta.items(), key=lambda kv: -kv[1]
            )[:top_counters]
            activity = ", ".join(f"{k}={v:,}" for k, v in top)
            if record.extras:
                extra_text = ", ".join(
                    f"{k}={v:,}" if isinstance(v, int) else f"{k}={v}"
                    for k, v in record.extras.items()
                )
                activity = ", ".join(filter(None, (extra_text, activity)))
            lines.append(
                f"  {record.name:<14}{record.wall_s:>9.3f}s{share:>7.1f}%  {activity}"
            )
        lines.append(f"  {'total':<14}{total:>9.3f}s{100.0:>7.1f}%" if total else "")
        return "\n".join(filter(None, lines))
