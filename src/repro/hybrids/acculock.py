"""AccuLock: one epoch + one lockset per location (hybrid detection).

AccuLock (Xie & Xue, CGO 2011) keeps FastTrack-shaped access history —
a last-write record and per-thread last-read records, cleared on write —
but stamps every record with the *lockset held at the access* and orders
events with weak (barrier-only) happens-before clocks
(:class:`~repro.hybrids.clocks.WeakClocks`).  An access conflicts with a
recorded one iff all three hold:

1. different thread,
2. the recorded epoch is *not* weak-happens-before the access
   (no barrier episode separates them), and
3. the two locksets are disjoint.

Condition 3 is where the hybrid beats pure lockset: an ordered hand-off
through a lock keeps the critical sections lock-*sharing*, so no alarm —
but unlike pure happens-before the lock edge itself never orders the
accesses, so the verdict does not depend on which schedule was monitored.

Per access this is O(T) worst case (the read map) with O(1) expected,
plus one O(|L|) set intersection on epoch-concurrent pairs only — the
Fine-Grained Lens taxonomy's middle ground between FastTrack's O(1)
epochs and Eraser's per-access intersections.

The conformance harness pins its place in the lattice:
exact-HB ⊆ acculock ⊆ multilock-hb ⊆ strict-lockset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addresses import spanned_chunks
from repro.common.errors import DetectorError
from repro.common.events import OpKind, Trace
from repro.common.stats import StatCounters
from repro.hybrids.clocks import WeakClocks
from repro.obs.trace import emit_alarm
from repro.reporting import DetectionResult, RaceReportLog, run_deprecated

#: Shared "no conflicts" result for the race-free hot path.
_NO_CONFLICTS: list[str] = []


class AccuChunk:
    """Access history of one chunk: last write + per-thread reads, each
    stamped ``(epoch value, lockset)``."""

    __slots__ = ("write", "reads")

    def __init__(self):
        #: ``(thread, clock value, lockset)`` of the last write, or None.
        self.write: tuple[int, int, frozenset] | None = None
        #: thread -> ``(clock value, lockset)`` of its last read since the
        #: last write (cleared on write, mirroring HBChunkMeta/FastTrack).
        self.reads: dict[int, tuple[int, frozenset]] = {}


@dataclass
class AccuLockDetector:
    """Epoch + single-lockset hybrid detection (AccuLock)."""

    granularity: int = 4
    barrier_reset: bool = True
    name: str = "acculock"
    stats: StatCounters = field(default_factory=StatCounters)

    def core(self) -> "AccuLockCore":
        """A fresh incremental core for one pass (the engine entry point)."""
        return AccuLockCore(self)

    def run(self, trace: Trace, obs=None) -> DetectionResult:
        """Consume the trace; report lock-disjoint epoch-concurrent pairs.

        ``obs`` is an optional :class:`repro.obs.Observability`; alarms are
        recorded and emitted when it is active.
        """
        return run_deprecated(self, trace, obs=obs)


class AccuLockCore:
    """Mutable state of one AccuLock pass (trace-only)."""

    machine_config = None

    def __init__(self, detector: AccuLockDetector):
        self.d = detector
        self.name = detector.name

    # ------------------------------------------------------------ chunk logic

    def _check(self, chunk: AccuChunk, tid: int, clock, held, is_write: bool):
        """Race-check one access against the chunk history, then record it.

        ``held`` is the accessor's lock->depth map; the conflict test is
        lockset *disjointness* against each epoch-concurrent record.
        """
        conflicts = None
        knows = clock.knows
        write = chunk.write
        if (
            write is not None
            and write[0] != tid
            and not knows((write[0], write[1]))
            and not (write[2] & held.keys())
        ):
            conflicts = [
                f"lock-disjoint with write by t{write[0]}@{write[1]}"
            ]
        if is_write:
            reads = chunk.reads
            if reads:
                for reader, (value, lockset) in reads.items():
                    if (
                        reader != tid
                        and not knows((reader, value))
                        and not (lockset & held.keys())
                    ):
                        if conflicts is None:
                            conflicts = []
                        conflicts.append(
                            f"lock-disjoint with read by t{reader}@{value}"
                        )
                reads.clear()
            chunk.write = (tid, clock.values[tid], frozenset(held))
        else:
            chunk.reads[tid] = (clock.values[tid], frozenset(held))
        return conflicts if conflicts is not None else _NO_CONFLICTS

    # ---------------------------------------------------------- scalar path

    def begin(self, trace: Trace, obs=None, machine=None) -> None:
        """Allocate the pass state; ``machine`` is ignored (trace-only)."""
        self.obs = obs
        self._observe = obs is not None and obs.active
        self.log = RaceReportLog(self.d.name)
        self.run_stats = StatCounters()
        self.clocks = WeakClocks(trace.num_threads)
        self.held: dict[int, dict[int, int]] = {}  # thread -> lock -> depth
        self.chunks: dict[int, AccuChunk] = {}
        self._arrivals: dict[int, int] = {}
        # Hot per-chunk counters, batched and flushed in finish().
        self._n_history_updates = 0
        self._n_acquires = 0
        self._n_releases = 0
        self._n_episodes = 0

    def step(self, event) -> None:
        """Process one trace event."""
        op = event.op
        thread_id = event.thread_id
        if op.kind is OpKind.COMPUTE:
            return
        if op.kind is OpKind.LOCK:
            locks = self.held.setdefault(thread_id, {})
            locks[op.addr] = locks.get(op.addr, 0) + 1
            self._n_acquires += 1
        elif op.kind is OpKind.UNLOCK:
            locks = self.held.setdefault(thread_id, {})
            if locks.get(op.addr, 0) <= 0:
                raise DetectorError(
                    f"t{thread_id} released lock 0x{op.addr:x} it never took"
                )
            locks[op.addr] -= 1
            if not locks[op.addr]:
                del locks[op.addr]
            self._n_releases += 1
        elif op.kind is OpKind.BARRIER:
            self._barrier(thread_id, op.addr, op.participants)
        else:
            chunks = self.chunks
            stats = self.run_stats
            clock = self.clocks.threads[thread_id]
            held = self.held.setdefault(thread_id, {})
            is_write = op.is_write
            for chunk_addr in spanned_chunks(op.addr, op.size, self.d.granularity):
                chunk = chunks.get(chunk_addr)
                if chunk is None:
                    chunk = AccuChunk()
                    chunks[chunk_addr] = chunk
                conflicts = self._check(chunk, thread_id, clock, held, is_write)
                self._n_history_updates += 1
                for detail in conflicts:
                    report = self.log.add(
                        seq=event.seq,
                        thread_id=thread_id,
                        addr=op.addr,
                        size=op.size,
                        site=op.site,
                        is_write=is_write,
                        detail=f"{detail} (chunk 0x{chunk_addr:x})",
                    )
                    stats.add("acculock.dynamic_reports")
                    if self._observe:
                        self.obs.metrics.add("obs.alarms")
                        if self.obs.emitter.enabled:
                            emit_alarm(self.obs.emitter, report)

    def _barrier(self, thread_id: int, barrier_id: int, participants: int) -> None:
        if self.clocks.barrier_arrive(thread_id, barrier_id, participants):
            self._n_episodes += 1
            if self.d.barrier_reset:
                # Pre-barrier records are weak-known to every thread from
                # here on and can never conflict again; dropping them is a
                # pure memory optimization (reports are unchanged).
                self.chunks.clear()

    def finish(self) -> DetectionResult:
        """Assemble the detection result after the last event."""
        stats = self.run_stats
        if self._n_acquires:
            stats.add("acculock.acquires", self._n_acquires)
        if self._n_releases:
            stats.add("acculock.releases", self._n_releases)
        if self._n_episodes:
            stats.add("acculock.barrier_episodes", self._n_episodes)
        if self._n_history_updates:
            stats.add("acculock.history_updates", self._n_history_updates)
        return DetectionResult(
            detector=self.d.name, reports=self.log, stats=stats
        )

    # ------------------------------------------------------------- batch path
    # Vectorized kernel over the columnar trace.  Trace-only (no machine, no
    # tape); the weak clocks and chunk histories are the same objects the
    # scalar path uses — only the event dispatch is flattened.

    def begin_batch(self, cols, tape=None) -> None:
        """Allocate batch-pass state over a columnar trace (tape unused)."""
        self.log = RaceReportLog(self.d.name)
        self.run_stats = StatCounters()
        self.clocks = WeakClocks(cols.num_threads)
        self.held = {}
        self.chunks = {}
        self._arrivals = {}
        self._n_history_updates = 0
        self._n_acquires = 0
        self._n_releases = 0
        self._n_episodes = 0
        self._n_reports = 0

    def step_batch(self, cols, lo: int, hi: int) -> None:
        """Process events ``[lo, hi)`` of ``cols``."""
        rows = cols.rows()
        sites = cols.sites
        participants = cols.participants
        granularity = self.d.granularity
        chunk_mask = ~(granularity - 1)
        threads = self.clocks.threads
        held = self.held
        chunks = self.chunks
        log_add = self.log.add
        check = self._check
        n_history_updates = self._n_history_updates
        n_reports = self._n_reports

        for i in range(lo, hi):
            kind, tid, addr, size, sid = rows[i]
            if kind <= 1:  # READ / WRITE
                is_write = kind == 1
                clock = threads[tid]
                locks = held.get(tid)
                if locks is None:
                    locks = held[tid] = {}
                first = addr & chunk_mask
                last = (addr + size - 1) & chunk_mask
                chunk_addr = first
                while True:
                    chunk = chunks.get(chunk_addr)
                    if chunk is None:
                        chunk = chunks[chunk_addr] = AccuChunk()
                    conflicts = check(chunk, tid, clock, locks, is_write)
                    n_history_updates += 1
                    for detail in conflicts:
                        log_add(
                            seq=i,
                            thread_id=tid,
                            addr=addr,
                            size=size,
                            site=sites[sid],
                            is_write=is_write,
                            detail=f"{detail} (chunk 0x{chunk_addr:x})",
                        )
                        n_reports += 1
                    if chunk_addr == last:
                        break
                    chunk_addr += granularity
            elif kind == 2:  # LOCK
                locks = held.get(tid)
                if locks is None:
                    locks = held[tid] = {}
                locks[addr] = locks.get(addr, 0) + 1
                self._n_acquires += 1
            elif kind == 3:  # UNLOCK
                locks = held.get(tid)
                if locks is None:
                    locks = held[tid] = {}
                if locks.get(addr, 0) <= 0:
                    raise DetectorError(
                        f"t{tid} released lock 0x{addr:x} it never took"
                    )
                locks[addr] -= 1
                if not locks[addr]:
                    del locks[addr]
                self._n_releases += 1
            elif kind == 4:  # BARRIER
                self._barrier(tid, addr, participants[i])
            # kind == 5 (COMPUTE): no effect.

        self._n_history_updates = n_history_updates
        self._n_reports = n_reports

    def finish_batch(self) -> DetectionResult:
        """Assemble the detection result after the last batch."""
        stats = self.run_stats
        if self._n_acquires:
            stats.add("acculock.acquires", self._n_acquires)
        if self._n_releases:
            stats.add("acculock.releases", self._n_releases)
        if self._n_episodes:
            stats.add("acculock.barrier_episodes", self._n_episodes)
        if self._n_reports:
            stats.add("acculock.dynamic_reports", self._n_reports)
        if self._n_history_updates:
            stats.add("acculock.history_updates", self._n_history_updates)
        return DetectionResult(detector=self.d.name, reports=self.log, stats=stats)
