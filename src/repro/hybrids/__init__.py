"""Hybrid lockset x happens-before detectors (the post-HARD lineage).

HARD (Section 3) picks lockset over happens-before for schedule
insensitivity and pays for it in false positives.  The literature that
followed split the difference instead:

* :mod:`repro.hybrids.acculock` — AccuLock: one epoch plus one lockset per
  location; the lockset intersection is consulted *only* for
  epoch-concurrent accesses, so synchronized hand-offs stop alarming
  while unordered unlocked accesses still do.
* :mod:`repro.hybrids.multilock` — MultiLock-HB (DRTracker's scheme): a
  *set* of reader locksets and writer locksets per location, so a
  location legitimately protected by different locks in different phases
  is not collapsed into one ever-shrinking candidate set.
* :mod:`repro.hb.fasttrack` — FastTrack: the epoch-optimized exact
  happens-before baseline the hybrids are measured against.

The hybrids use *weak* happens-before (:class:`~repro.hybrids.clocks.
WeakClocks`): barrier episodes order events, lock edges do not.  That is
the AccuLock design point — treating release->acquire as an ordering edge
would reintroduce exactly the schedule sensitivity (Figure 1) that lockset
exists to avoid.

:mod:`repro.hybrids.conformance` pins the resulting lattice: on every
trace, exact-HB reports ⊆ AccuLock ⊆ MultiLock-HB ⊆ strict-lockset
warnings, and classifies each adjacent divergence.
"""

from repro.hybrids.acculock import AccuLockCore, AccuLockDetector
from repro.hybrids.clocks import WeakClocks
from repro.hybrids.conformance import (
    ConformanceError,
    ConformanceReport,
    ConformanceSuiteResult,
    check_conformance,
    run_conformance_suite,
    strict_lockset_sites,
)
from repro.hybrids.multilock import MultiLockHBCore, MultiLockHBDetector

__all__ = [
    "AccuLockCore",
    "AccuLockDetector",
    "ConformanceError",
    "ConformanceReport",
    "ConformanceSuiteResult",
    "MultiLockHBCore",
    "MultiLockHBDetector",
    "WeakClocks",
    "check_conformance",
    "run_conformance_suite",
    "strict_lockset_sites",
]
