"""MultiLock-HB: per-location reader/writer lockset *sets* (DRTracker).

AccuLock keeps one lockset per record, so a location protected by lock A
in one code path and lock B in another collapses to whichever access came
last.  MultiLock-HB (DRTracker's scheme) keeps a *set* of records per
side instead:

* ``writes`` — every ``(thread, epoch, lockset)`` write record since the
  last barrier episode, deduplicated by ``(thread, lockset)`` (a repeat
  write under the same locks just refreshes the epoch);
* ``reads`` — the same per reader, cleared by the next write (a read
  racing a later access is subsumed by the clearing write, exactly as in
  the happens-before history).

An access conflicts with a record iff different thread, the record is not
weak-happens-before ordered (no barrier episode between — see
:class:`~repro.hybrids.clocks.WeakClocks`), and the two locksets are
disjoint.  Keeping *all* writer locksets is what catches the
absorbed-locks pattern (the ``absorbed-locks`` fuzz exemplar): Eraser's
single candidate set silently shrinks through A-then-B phases, while
MultiLock still owns the ``{A}``-stamped record when the ``{B}``-stamped
access arrives.

Per access: O(T * S) record checks where S is the number of distinct
locksets per thread (the Fine-Grained Lens taxonomy's cost for
lockset-set schemes), each an O(|L|) disjointness test.

``use_weak_hb=False`` disables condition 2 entirely (every record is
treated as concurrent): that is the pure pairwise-lockset ablation the
fuzz oracle uses to separate "the hybrid pruned a lockset false positive
via barrier ordering" from "pairwise disjointness never held at all".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addresses import spanned_chunks
from repro.common.errors import DetectorError
from repro.common.events import OpKind, Trace
from repro.common.stats import StatCounters
from repro.hybrids.clocks import WeakClocks
from repro.obs.trace import emit_alarm
from repro.reporting import DetectionResult, RaceReportLog, run_deprecated

#: Shared "no conflicts" result for the race-free hot path.
_NO_CONFLICTS: list[str] = []


class MultiChunk:
    """Access history of one chunk: writer and reader record lists.

    Each record is ``[thread, epoch value, lockset]`` (mutable so a
    same-``(thread, lockset)`` repeat refreshes the epoch in place).
    """

    __slots__ = ("writes", "reads")

    def __init__(self):
        self.writes: list[list] = []
        self.reads: list[list] = []


def _record(records: list[list], tid: int, value: int, lockset: frozenset) -> None:
    """Add ``(tid, value, lockset)``, refreshing a same-keyed record."""
    for record in records:
        if record[0] == tid and record[2] == lockset:
            record[1] = value
            return
    records.append([tid, value, lockset])


@dataclass
class MultiLockHBDetector:
    """Multiple-reader/writer-lockset hybrid detection (MultiLock-HB)."""

    granularity: int = 4
    barrier_reset: bool = True
    use_weak_hb: bool = True
    name: str = "multilock-hb"
    stats: StatCounters = field(default_factory=StatCounters)

    def core(self) -> "MultiLockHBCore":
        """A fresh incremental core for one pass (the engine entry point)."""
        return MultiLockHBCore(self)

    def run(self, trace: Trace, obs=None) -> DetectionResult:
        """Consume the trace; report lock-disjoint epoch-concurrent pairs.

        ``obs`` is an optional :class:`repro.obs.Observability`; alarms are
        recorded and emitted when it is active.
        """
        return run_deprecated(self, trace, obs=obs)


class MultiLockHBCore:
    """Mutable state of one MultiLock-HB pass (trace-only)."""

    machine_config = None

    def __init__(self, detector: MultiLockHBDetector):
        self.d = detector
        self.name = detector.name

    # ------------------------------------------------------------ chunk logic

    def _check(self, chunk: MultiChunk, tid: int, clock, held, is_write: bool):
        """Race-check one access against every record, then record it.

        ``held`` is the accessor's lock->depth map; a record conflicts when
        it is foreign, epoch-concurrent and lockset-disjoint.
        """
        conflicts = None
        knows = clock.knows if self.d.use_weak_hb else None
        keys = held.keys()
        for kind_label, records in (
            ("write", chunk.writes),
            ("read", chunk.reads) if is_write else ("read", ()),
        ):
            for thread, value, lockset in records:
                if thread == tid:
                    continue
                if knows is not None and knows((thread, value)):
                    continue
                if lockset & keys:
                    continue
                if conflicts is None:
                    conflicts = []
                conflicts.append(
                    f"lock-disjoint with {kind_label} by t{thread}@{value}"
                )
        lockset = frozenset(held)
        value = clock.values[tid]
        if is_write:
            chunk.reads.clear()
            _record(chunk.writes, tid, value, lockset)
        else:
            _record(chunk.reads, tid, value, lockset)
        return conflicts if conflicts is not None else _NO_CONFLICTS

    # ---------------------------------------------------------- scalar path

    def begin(self, trace: Trace, obs=None, machine=None) -> None:
        """Allocate the pass state; ``machine`` is ignored (trace-only)."""
        self.obs = obs
        self._observe = obs is not None and obs.active
        self.log = RaceReportLog(self.d.name)
        self.run_stats = StatCounters()
        self.clocks = WeakClocks(trace.num_threads)
        self.held: dict[int, dict[int, int]] = {}  # thread -> lock -> depth
        self.chunks: dict[int, MultiChunk] = {}
        # Hot per-chunk counters, batched and flushed in finish().
        self._n_history_updates = 0
        self._n_acquires = 0
        self._n_releases = 0
        self._n_episodes = 0

    def step(self, event) -> None:
        """Process one trace event."""
        op = event.op
        thread_id = event.thread_id
        if op.kind is OpKind.COMPUTE:
            return
        if op.kind is OpKind.LOCK:
            locks = self.held.setdefault(thread_id, {})
            locks[op.addr] = locks.get(op.addr, 0) + 1
            self._n_acquires += 1
        elif op.kind is OpKind.UNLOCK:
            locks = self.held.setdefault(thread_id, {})
            if locks.get(op.addr, 0) <= 0:
                raise DetectorError(
                    f"t{thread_id} released lock 0x{op.addr:x} it never took"
                )
            locks[op.addr] -= 1
            if not locks[op.addr]:
                del locks[op.addr]
            self._n_releases += 1
        elif op.kind is OpKind.BARRIER:
            self._barrier(thread_id, op.addr, op.participants)
        else:
            chunks = self.chunks
            stats = self.run_stats
            clock = self.clocks.threads[thread_id]
            held = self.held.setdefault(thread_id, {})
            is_write = op.is_write
            for chunk_addr in spanned_chunks(op.addr, op.size, self.d.granularity):
                chunk = chunks.get(chunk_addr)
                if chunk is None:
                    chunk = MultiChunk()
                    chunks[chunk_addr] = chunk
                conflicts = self._check(chunk, thread_id, clock, held, is_write)
                self._n_history_updates += 1
                for detail in conflicts:
                    report = self.log.add(
                        seq=event.seq,
                        thread_id=thread_id,
                        addr=op.addr,
                        size=op.size,
                        site=op.site,
                        is_write=is_write,
                        detail=f"{detail} (chunk 0x{chunk_addr:x})",
                    )
                    stats.add("multilock.dynamic_reports")
                    if self._observe:
                        self.obs.metrics.add("obs.alarms")
                        if self.obs.emitter.enabled:
                            emit_alarm(self.obs.emitter, report)

    def _barrier(self, thread_id: int, barrier_id: int, participants: int) -> None:
        if self.clocks.barrier_arrive(thread_id, barrier_id, participants):
            self._n_episodes += 1
            if self.d.barrier_reset and self.d.use_weak_hb:
                # Pre-barrier records are weak-known to every thread from
                # here on and can never conflict again; dropping them is a
                # pure memory optimization (reports are unchanged).  With
                # use_weak_hb off the epoch filter is gone, so the records
                # must stay live and the reset is skipped.
                self.chunks.clear()

    def finish(self) -> DetectionResult:
        """Assemble the detection result after the last event."""
        stats = self.run_stats
        if self._n_acquires:
            stats.add("multilock.acquires", self._n_acquires)
        if self._n_releases:
            stats.add("multilock.releases", self._n_releases)
        if self._n_episodes:
            stats.add("multilock.barrier_episodes", self._n_episodes)
        if self._n_history_updates:
            stats.add("multilock.history_updates", self._n_history_updates)
        return DetectionResult(
            detector=self.d.name, reports=self.log, stats=stats
        )

    # ------------------------------------------------------------- batch path
    # Vectorized kernel over the columnar trace.  Trace-only (no machine, no
    # tape); the weak clocks and chunk histories are the same objects the
    # scalar path uses — only the event dispatch is flattened.

    def begin_batch(self, cols, tape=None) -> None:
        """Allocate batch-pass state over a columnar trace (tape unused)."""
        self.log = RaceReportLog(self.d.name)
        self.run_stats = StatCounters()
        self.clocks = WeakClocks(cols.num_threads)
        self.held = {}
        self.chunks = {}
        self._n_history_updates = 0
        self._n_acquires = 0
        self._n_releases = 0
        self._n_episodes = 0
        self._n_reports = 0

    def step_batch(self, cols, lo: int, hi: int) -> None:
        """Process events ``[lo, hi)`` of ``cols``."""
        rows = cols.rows()
        sites = cols.sites
        participants = cols.participants
        granularity = self.d.granularity
        chunk_mask = ~(granularity - 1)
        threads = self.clocks.threads
        held = self.held
        chunks = self.chunks
        log_add = self.log.add
        check = self._check
        n_history_updates = self._n_history_updates
        n_reports = self._n_reports

        for i in range(lo, hi):
            kind, tid, addr, size, sid = rows[i]
            if kind <= 1:  # READ / WRITE
                is_write = kind == 1
                clock = threads[tid]
                locks = held.get(tid)
                if locks is None:
                    locks = held[tid] = {}
                first = addr & chunk_mask
                last = (addr + size - 1) & chunk_mask
                chunk_addr = first
                while True:
                    chunk = chunks.get(chunk_addr)
                    if chunk is None:
                        chunk = chunks[chunk_addr] = MultiChunk()
                    conflicts = check(chunk, tid, clock, locks, is_write)
                    n_history_updates += 1
                    for detail in conflicts:
                        log_add(
                            seq=i,
                            thread_id=tid,
                            addr=addr,
                            size=size,
                            site=sites[sid],
                            is_write=is_write,
                            detail=f"{detail} (chunk 0x{chunk_addr:x})",
                        )
                        n_reports += 1
                    if chunk_addr == last:
                        break
                    chunk_addr += granularity
            elif kind == 2:  # LOCK
                locks = held.get(tid)
                if locks is None:
                    locks = held[tid] = {}
                locks[addr] = locks.get(addr, 0) + 1
                self._n_acquires += 1
            elif kind == 3:  # UNLOCK
                locks = held.get(tid)
                if locks is None:
                    locks = held[tid] = {}
                if locks.get(addr, 0) <= 0:
                    raise DetectorError(
                        f"t{tid} released lock 0x{addr:x} it never took"
                    )
                locks[addr] -= 1
                if not locks[addr]:
                    del locks[addr]
                self._n_releases += 1
            elif kind == 4:  # BARRIER
                self._barrier(tid, addr, participants[i])
            # kind == 5 (COMPUTE): no effect.

        self._n_history_updates = n_history_updates
        self._n_reports = n_reports

    def finish_batch(self) -> DetectionResult:
        """Assemble the detection result after the last batch."""
        stats = self.run_stats
        if self._n_acquires:
            stats.add("multilock.acquires", self._n_acquires)
        if self._n_releases:
            stats.add("multilock.releases", self._n_releases)
        if self._n_episodes:
            stats.add("multilock.barrier_episodes", self._n_episodes)
        if self._n_reports:
            stats.add("multilock.dynamic_reports", self._n_reports)
        if self._n_history_updates:
            stats.add("multilock.history_updates", self._n_history_updates)
        return DetectionResult(detector=self.d.name, reports=self.log, stats=stats)
