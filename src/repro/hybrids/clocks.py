"""Weak (barrier-only) happens-before clocks for the hybrid detectors.

AccuLock's key design decision: release->acquire edges are *not*
happens-before edges.  Treating them as ordering would make the hybrid
exactly as schedule-sensitive as pure happens-before — the Figure 1 bug
would again be visible in one interleaving and invisible in the other,
because whichever critical section happens to run second "learns" the
first one's clock.  Dropping lock edges keeps the lockset half of the
hybrid in charge of lock-protected accesses, while barrier episodes —
which order *every* participant in *every* legal schedule — still
discharge the classic barrier-phased false positives.

:class:`WeakClocks` is therefore :class:`~repro.hb.vectorclock.SyncClocks`
minus the lock methods: only barrier episodes create edges.  Since every
weak edge is also a full happens-before edge, weak-ordered implies
HB-ordered — the containment the conformance harness pins
(exact-HB ⊆ hybrid) rests on exactly this.
"""

from __future__ import annotations

from repro.hb.vectorclock import VectorClock


class WeakClocks:
    """Barrier-only vector clock state shared by the hybrid detectors.

    Lock operations are deliberately *not* edges (see the module
    docstring); callers simply never feed them in.  Barrier semantics are
    identical to :class:`~repro.hb.vectorclock.SyncClocks`: arrivals are
    buffered, and the completing arrival applies an all-to-all join plus
    per-thread increment.
    """

    def __init__(self, num_threads: int):
        self.num_threads = num_threads
        self.threads = [VectorClock.zero(num_threads) for _ in range(num_threads)]
        # Same initial-epoch trick as SyncClocks: each thread starts in
        # epoch 1 of its own component so a first-epoch access epoch
        # ``(t, 1)`` is distinguishable from "knows nothing" (0 <= 0 would
        # make unsynchronised first accesses look ordered).
        for thread_id, clock in enumerate(self.threads):
            clock.increment(thread_id)
        self._barrier_waiters: dict[int, list[int]] = {}

    def clock(self, thread_id: int) -> VectorClock:
        """The current clock of ``thread_id``."""
        return self.threads[thread_id]

    def barrier_arrive(self, thread_id: int, barrier_id: int, participants: int) -> bool:
        """Record an arrival; apply the all-to-all join on the last one.

        Returns True when this arrival completed the barrier episode.
        """
        waiters = self._barrier_waiters.setdefault(barrier_id, [])
        waiters.append(thread_id)
        if len(waiters) < participants:
            return False
        joint = VectorClock.zero(self.num_threads)
        for tid in waiters:
            joint.join(self.threads[tid])
        for tid in waiters:
            clock = self.threads[tid]
            clock.join(joint)
            clock.increment(tid)
        waiters.clear()
        return True
