"""Cross-detector conformance: pin the hybrid lattice, explain every gap.

On any single trace the exact detector family forms a lattice of warning
sets (each containment proved by construction, re-checked empirically
here on every run):

    fasttrack  ==  hb-ideal                      (epochs are an encoding,
                                                  not an approximation)
    fasttrack  ⊆  acculock  ⊆  multilock-hb      (each step only *keeps*
                                                  more history / drops an
                                                  ordering edge)
    multilock-hb  ⊆  strict-lockset              (a lock-disjoint
                                                  epoch-concurrent pair
                                                  empties the accumulated
                                                  candidate set too)

where *strict-lockset* is Eraser with no Virgin/Exclusive forgiveness:
candidate sets intersected from the very first access, warnings on any
empty-candidate chunk touched by more than one thread, reset only at
barrier episodes.  :func:`check_conformance` runs the family in one
:class:`~repro.engine.EngineSession` pass, asserts the chain at
*(event, site)* granularity, and classifies every adjacent-pair
divergence:

==========================  ================================================
kind                        meaning / verification
==========================  ================================================
``hb-schedule-miss``        a hybrid warns, exact HB is silent: the strict
                            lockset warns too, so the discipline is violated
                            but this schedule ordered the accesses (Figure 1)
``multi-lockset-witness``   MultiLock-HB warns, AccuLock is silent: a
                            retained record with a different lockset
                            witnesses disjointness AccuLock overwrote
``lockset-false-positive``  a lockset-side detector warns, the hybrid is
                            silent: the no-weak-HB ablation still warns, so
                            a barrier episode (not lock sharing) prunes it
``pairwise-lockset``        exact/strict lockset warns, even the no-weak-HB
                            ablation is silent: the *accumulated* candidate
                            set empties although no conflicting pair is
                            pairwise lock-disjoint
``lstate-forgiven``         MultiLock-HB warns, Eraser-exact is silent: the
                            strict lockset warns, so the Virgin/Exclusive
                            window absorbed the evidence
``unexplained``             anything else — a genuine bug in one detector
==========================  ================================================

Bloom-filter aliasing and the other hardware approximations never appear
here — this module compares *exact* detectors only; the fuzz oracle
(:mod:`repro.fuzz.oracle`) folds the same family into its hard-default
differential suite where the PR 3 ablation machinery explains those.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple

from repro.common.events import OpKind, Trace
from repro.engine.session import EngineSession
from repro.hb.fasttrack import FastTrackDetector
from repro.hb.ideal import IdealHappensBeforeDetector
from repro.hybrids.acculock import AccuLockDetector
from repro.hybrids.multilock import MultiLockHBDetector
from repro.lockset.exact import IdealLocksetDetector
from repro.reporting import DetectionResult


class ConformanceError(Exception):
    """A conformance-suite case could not be built or judged."""


#: Divergence kinds (values double as the JSON vocabulary).
HB_SCHEDULE_MISS = "hb-schedule-miss"
MULTI_LOCKSET_WITNESS = "multi-lockset-witness"
LOCKSET_FALSE_POSITIVE = "lockset-false-positive"
PAIRWISE_LOCKSET = "pairwise-lockset"
LSTATE_FORGIVEN = "lstate-forgiven"
UNEXPLAINED = "unexplained"


def site_key(site) -> tuple:
    """A site's hashable identity (None-safe)."""
    if site is None:
        return ("", -1, "")
    return (site.file, site.line, site.label)


class StrictWarnings(NamedTuple):
    """Strict (no-forgiveness) lockset warnings over one trace."""

    events: frozenset  # {(seq, site_key)}
    sites: frozenset  # {site_key}


def strict_lockset_sites(trace: Trace, granularity: int = 4) -> StrictWarnings:
    """Replay a *strict* lockset: no Virgin/Exclusive/read-share mercy.

    Per chunk the candidate set is intersected with the accessor's held
    locks from the **first** access on; a warning is recorded at every
    access finding an empty candidate on a chunk already touched by
    another thread.  Chunk state is reset at completed barrier episodes
    (Section 3.5), exactly as the real detectors do.  This is the outer
    envelope of the lattice: anything the hybrids report must land here.
    """
    chunk_mask = ~(granularity - 1)
    held: dict[int, dict[int, int]] = {}
    arrivals: dict[int, int] = {}
    chunks: dict[int, list] = {}  # chunk -> [candidate | None, {threads}]
    events: set = set()
    sites: set = set()
    for event in trace:
        op = event.op
        kind = op.kind
        thread_id = event.thread_id
        if kind is OpKind.LOCK:
            locks = held.setdefault(thread_id, {})
            locks[op.addr] = locks.get(op.addr, 0) + 1
        elif kind is OpKind.UNLOCK:
            locks = held.setdefault(thread_id, {})
            if locks.get(op.addr, 0) > 0:
                locks[op.addr] -= 1
                if not locks[op.addr]:
                    del locks[op.addr]
        elif kind is OpKind.BARRIER:
            count = arrivals.get(op.addr, 0) + 1
            if count < op.participants:
                arrivals[op.addr] = count
            else:
                arrivals[op.addr] = 0
                chunks.clear()
        elif op.is_memory_access:
            locks = held.setdefault(thread_id, {})
            first = op.addr & chunk_mask
            last = (op.addr + op.size - 1) & chunk_mask
            chunk_addr = first
            while True:
                chunk = chunks.get(chunk_addr)
                if chunk is None:
                    chunk = chunks[chunk_addr] = [None, set()]
                candidate = chunk[0]
                chunk[0] = (
                    set(locks) if candidate is None else candidate & locks.keys()
                )
                threads = chunk[1]
                threads.add(thread_id)
                if not chunk[0] and len(threads) > 1:
                    key = site_key(op.site)
                    events.add((event.seq, key))
                    sites.add(key)
                if chunk_addr == last:
                    break
                chunk_addr += granularity
    return StrictWarnings(frozenset(events), frozenset(sites))


def _report_events(result: DetectionResult) -> frozenset:
    """The ``(seq, site_key)`` identity set of one detector's reports."""
    return frozenset((report.seq, site_key(report.site)) for report in result.reports)


def _result_fingerprint(result: DetectionResult) -> tuple:
    """Canonical identity of one result, for batch/scalar parity checks."""
    return (
        result.detector,
        tuple(
            (r.seq, r.thread_id, r.addr, r.size, site_key(r.site), r.is_write, r.detail)
            for r in result.reports
        ),
        tuple(sorted(result.stats.snapshot().items())),
    )


@dataclass(frozen=True)
class ConformanceDivergence:
    """One classified disagreement between two adjacent lattice members."""

    pair: str
    site: tuple
    kind: str
    evidence: str = ""

    @property
    def is_expected(self) -> bool:
        return self.kind != UNEXPLAINED

    def to_dict(self) -> dict:
        return {
            "pair": self.pair,
            "site": list(self.site),
            "kind": self.kind,
            "evidence": self.evidence,
        }


@dataclass
class ConformanceReport:
    """The verdict of one trace under the full exact-detector lattice."""

    label: str
    events: int
    engine_path: str
    alarm_sites: dict[str, int] = field(default_factory=dict)
    violations: tuple[str, ...] = ()
    divergences: tuple[ConformanceDivergence, ...] = ()

    @property
    def unexplained(self) -> tuple[ConformanceDivergence, ...]:
        return tuple(d for d in self.divergences if not d.is_expected)

    @property
    def ok(self) -> bool:
        """True iff the chain held and every divergence is classified."""
        return not self.violations and not self.unexplained

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "events": self.events,
            "engine_path": self.engine_path,
            "alarm_sites": dict(sorted(self.alarm_sites.items())),
            "violations": list(self.violations),
            "divergences": [d.to_dict() for d in self.divergences],
            "ok": self.ok,
        }


def _sample(items: Iterable, limit: int = 3) -> str:
    ordered = sorted(items)
    shown = ", ".join(repr(item) for item in ordered[:limit])
    if len(ordered) > limit:
        shown += f", … ({len(ordered)} total)"
    return shown


def _detector_family(granularity: int) -> list:
    return [
        FastTrackDetector(granularity=granularity),
        IdealHappensBeforeDetector(granularity=granularity),
        AccuLockDetector(granularity=granularity),
        MultiLockHBDetector(granularity=granularity),
        IdealLocksetDetector(granularity=granularity, name="exact-lockset"),
    ]


def check_conformance(
    trace: Trace,
    *,
    granularity: int = 4,
    engine_path: str = "auto",
    check_parity: bool = False,
    label: str = "",
) -> ConformanceReport:
    """Judge one trace: run the family, assert the chain, classify gaps.

    With ``check_parity`` the whole family is run on **both** engine walks
    and any batch/scalar fingerprint mismatch (reports or stats) becomes a
    violation — the bit-for-bit guarantee the batch kernels must keep.
    """
    session = EngineSession(trace, path=engine_path)
    for detector in _detector_family(granularity):
        session.add(detector)
    ft, hb, al, ml, exact = session.run()

    violations: list[str] = []
    if check_parity:
        scalar_session = EngineSession(trace, path="scalar")
        for detector in _detector_family(granularity):
            scalar_session.add(detector)
        batch_session = EngineSession(trace, path="batch")
        for detector in _detector_family(granularity):
            batch_session.add(detector)
        for scalar_result, batch_result in zip(
            scalar_session.run(), batch_session.run()
        ):
            if _result_fingerprint(scalar_result) != _result_fingerprint(
                batch_result
            ):
                violations.append(
                    f"batch/scalar parity broken for {scalar_result.detector}"
                )

    ft_events = _report_events(ft)
    hb_events = _report_events(hb)
    al_events = _report_events(al)
    ml_events = _report_events(ml)
    strict = strict_lockset_sites(trace, granularity)

    if ft_events != hb_events:
        violations.append(
            "fasttrack != hb-ideal: only-fasttrack "
            f"[{_sample(ft_events - hb_events)}], only-hb "
            f"[{_sample(hb_events - ft_events)}]"
        )
    if not ft_events <= al_events:
        violations.append(
            f"fasttrack ⊄ acculock: [{_sample(ft_events - al_events)}]"
        )
    if not al_events <= ml_events:
        violations.append(
            f"acculock ⊄ multilock-hb: [{_sample(al_events - ml_events)}]"
        )
    if not ml_events <= strict.events:
        violations.append(
            f"multilock-hb ⊄ strict-lockset: [{_sample(ml_events - strict.events)}]"
        )

    ft_sites = {site_key(s) for s in ft.alarm_sites()}
    al_sites = {site_key(s) for s in al.alarm_sites()}
    ml_sites = {site_key(s) for s in ml.alarm_sites()}
    exact_sites = {site_key(s) for s in exact.alarm_sites()}

    divergences: list[ConformanceDivergence] = []

    def classify(pair: str, site: tuple, kind: str, evidence: str) -> None:
        divergences.append(ConformanceDivergence(pair, site, kind, evidence))

    for site in sorted(al_sites - ft_sites):
        if site in strict.sites:
            classify(
                "acculock-vs-fasttrack",
                site,
                HB_SCHEDULE_MISS,
                "strict lockset warns here too: discipline violated, but "
                "this schedule ordered the accesses (Figure 1)",
            )
        else:
            classify(
                "acculock-vs-fasttrack",
                site,
                UNEXPLAINED,
                "acculock warns outside the strict-lockset envelope",
            )
    for site in sorted(ml_sites - al_sites):
        if site in strict.sites:
            classify(
                "multilock-vs-acculock",
                site,
                MULTI_LOCKSET_WITNESS,
                "a retained record with a different lockset witnesses "
                "disjointness AccuLock's single-slot history overwrote",
            )
        else:
            classify(
                "multilock-vs-acculock",
                site,
                UNEXPLAINED,
                "multilock-hb warns outside the strict-lockset envelope",
            )

    # Eraser-exact vs the hybrid envelope, both directions.  The no-weak-HB
    # ablation (epoch filter off: every record counts as concurrent) is
    # built lazily — it separates "a barrier episode orders the pair" from
    # "no pairwise lock-disjoint pair ever existed".
    noweak_sites: set | None = None

    def pairwise_sites() -> set:
        nonlocal noweak_sites
        if noweak_sites is None:
            ablation = EngineSession(trace, path=engine_path)
            ablation.add(
                MultiLockHBDetector(granularity=granularity, use_weak_hb=False)
            )
            (result,) = ablation.run()
            noweak_sites = {site_key(s) for s in result.alarm_sites()}
        return noweak_sites

    for site in sorted(exact_sites - ml_sites):
        if site in pairwise_sites():
            classify(
                "exact-vs-multilock",
                site,
                LOCKSET_FALSE_POSITIVE,
                "the no-weak-HB ablation still warns: a barrier episode "
                "orders the pair — the hybrid prunes Eraser's false alarm",
            )
        else:
            classify(
                "exact-vs-multilock",
                site,
                PAIRWISE_LOCKSET,
                "even the no-weak-HB ablation is silent: the accumulated "
                "candidate set empties although no conflicting pair is "
                "pairwise lock-disjoint",
            )
    for site in sorted(ml_sites - exact_sites):
        if site in strict.sites:
            classify(
                "exact-vs-multilock",
                site,
                LSTATE_FORGIVEN,
                "strict (no-forgiveness) lockset warns here: the "
                "Virgin/Exclusive window absorbed the evidence",
            )
        else:
            classify(
                "exact-vs-multilock",
                site,
                UNEXPLAINED,
                "multilock-hb warns outside the strict-lockset envelope",
            )
    for site in sorted(strict.sites - ml_sites):
        if site in pairwise_sites():
            classify(
                "strict-vs-multilock",
                site,
                LOCKSET_FALSE_POSITIVE,
                "the no-weak-HB ablation still warns: a barrier episode "
                "orders every surviving pair",
            )
        else:
            classify(
                "strict-vs-multilock",
                site,
                PAIRWISE_LOCKSET,
                "even the no-weak-HB ablation is silent: only the "
                "accumulated intersection empties",
            )

    return ConformanceReport(
        label=label or trace.label,
        events=len(trace),
        engine_path=engine_path,
        alarm_sites={
            "fasttrack": len(ft_sites),
            "hb-ideal": len({site_key(s) for s in hb.alarm_sites()}),
            "acculock": len(al_sites),
            "multilock-hb": len(ml_sites),
            "exact-lockset": len(exact_sites),
            "strict-lockset": len(strict.sites),
        },
        violations=tuple(violations),
        divergences=tuple(divergences),
    )


# --------------------------------------------------------------- suite runner


@dataclass
class ConformanceSuiteResult:
    """All case reports of one conformance-suite run."""

    reports: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def failures(self) -> list:
        return [report for report in self.reports if not report.ok]

    def to_dict(self) -> dict:
        return {
            "cases": len(self.reports),
            "ok": self.ok,
            "failures": len(self.failures),
            "reports": [report.to_dict() for report in self.reports],
        }


def _build_case_trace(spec: tuple) -> tuple[Trace, str]:
    """Materialise one suite case spec into (trace, label).

    Specs (all picklable, so cases can fan out over worker processes):

    * ``("workload", app, workload_seed, schedule_seed)``
    * ``("fuzz", index, workload_seed, schedule_seed)``
    * ``("corpus", path)``
    """
    from repro.threads.runtime import interleave
    from repro.threads.scheduler import RandomScheduler

    kind = spec[0]
    if kind == "workload":
        from repro.workloads import build_workload

        _, app, workload_seed, schedule_seed = spec
        program = build_workload(app, seed=workload_seed)
        label = f"workload:{app}@s{schedule_seed}"
    elif kind == "fuzz":
        from repro.fuzz.generator import generate_program

        _, index, workload_seed, schedule_seed = spec
        program = generate_program(index, workload_seed)
        label = f"fuzz:{index}@s{schedule_seed}"
    elif kind == "corpus":
        from repro.fuzz.corpus import load_case

        _, path = spec
        case = load_case(path)
        program = case.program
        schedule_seed = case.schedule_seed
        label = f"corpus:{program.name}"
    else:
        raise ConformanceError(f"unknown conformance case spec {spec!r}")
    scheduler = RandomScheduler(seed=schedule_seed, max_burst=8)
    return interleave(program, scheduler).trace, label


#: Worker parameters (set once per worker by the Pool initializer).
_WORKER_PARAMS: dict = {}


def _suite_init(granularity: int, check_parity: bool) -> None:
    _WORKER_PARAMS["granularity"] = granularity
    _WORKER_PARAMS["check_parity"] = check_parity


def _suite_case(spec: tuple) -> ConformanceReport:
    trace, label = _build_case_trace(spec)
    return check_conformance(
        trace,
        granularity=_WORKER_PARAMS.get("granularity", 4),
        check_parity=_WORKER_PARAMS.get("check_parity", True),
        label=label,
    )


def suite_specs(
    *,
    apps: Iterable[str] | None = None,
    workload_seed: object = 0,
    schedule_seeds: Iterable[int] = (0,),
    fuzz_seeds: Iterable[int] = (),
    corpus_dir: str | None = None,
) -> list[tuple]:
    """The case specs of one suite run, in deterministic order."""
    from repro.workloads import WORKLOAD_NAMES

    specs: list[tuple] = []
    names = tuple(apps) if apps is not None else WORKLOAD_NAMES
    seeds = tuple(schedule_seeds)
    for app in names:
        for schedule_seed in seeds:
            specs.append(("workload", app, workload_seed, schedule_seed))
    for index in fuzz_seeds:
        for schedule_seed in seeds:
            specs.append(("fuzz", index, workload_seed, schedule_seed))
    if corpus_dir is not None:
        from repro.fuzz.corpus import corpus_paths

        for path in corpus_paths(corpus_dir):
            specs.append(("corpus", str(path)))
    return specs


def run_conformance_suite(
    *,
    apps: Iterable[str] | None = None,
    workload_seed: object = 0,
    schedule_seeds: Iterable[int] = (0,),
    fuzz_seeds: Iterable[int] = (),
    corpus_dir: str | None = None,
    granularity: int = 4,
    check_parity: bool = True,
    jobs: int = 1,
) -> ConformanceSuiteResult:
    """Run :func:`check_conformance` over workloads, fuzz programs, corpora.

    ``jobs > 1`` fans the cases out over a process pool (cases are
    independent; specs, not traces, cross the process boundary).  Results
    are returned in spec order either way — bit-for-bit identical to a
    serial run.
    """
    specs = suite_specs(
        apps=apps,
        workload_seed=workload_seed,
        schedule_seeds=schedule_seeds,
        fuzz_seeds=fuzz_seeds,
        corpus_dir=corpus_dir,
    )
    _suite_init(granularity, check_parity)
    if jobs > 1 and len(specs) > 1:
        context = multiprocessing.get_context("spawn")
        with context.Pool(
            processes=min(jobs, len(specs)),
            initializer=_suite_init,
            initargs=(granularity, check_parity),
        ) as pool:
            reports = pool.map(_suite_case, specs)
    else:
        reports = [_suite_case(spec) for spec in specs]
    return ConformanceSuiteResult(reports=list(reports))
