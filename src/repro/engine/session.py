"""The single-pass engine: one trace walk feeding many detector cores.

The paper evaluates every detector configuration over the *identical*
execution (Section 5.1).  :class:`EngineSession` turns that methodology into
the execution strategy: the interleaved trace is walked **once**, each event
dispatched to every registered :class:`~repro.reporting.DetectorCore`, and
machine-backed cores with equal :class:`~repro.common.config.MachineConfig`s
share one cache/coherence replay via
:class:`~repro.engine.machineshare.MachineGroup`.  Results are bit-for-bit
identical to running each detector's legacy ``run(trace)`` alone — pinned by
``tests/engine/test_equivalence.py``.

Machine sharing is disabled while an obs *emitter* is enabled: the simulator
emits cache events (``l2.displacement``, ``cache.evict``…) through the
machine, and sharing would conflate which detector's replay produced them.
Metrics-only observability is share-safe — the machine's behaviour depends
on ``obs`` only through the emitter.

A :class:`~repro.obs.telemetry.FlightRecorder` on the bundle
(``obs.telemetry``) is also share-safe: the engine switches to sampled walk
variants that dispatch the *identical* event sequence and add only one
countdown per stepped event, timing every ``sample_period``-th step to
estimate per-core wall time, events/sec, and the lane dedup ratio.

When no observability is active, cores that advertise the batch protocol
(``begin_batch``/``step_batch``/``finish_batch``) are driven through the
*vectorized* walk instead: whole sync runs of the columnar trace
(:meth:`~repro.common.events.Trace.columns`) in one call each, with the
simulated machine's data-path prerecorded once per
(columns, machine config) by :class:`~repro.engine.tape.MachineTape`.
Results remain bit-for-bit identical to the scalar walk; ``path="scalar"``
forces the per-event reference oracle and ``path="batch"`` asserts the
vectorized path is actually taken.

``path="sharded"`` goes one step further: the trace is partitioned by
address (:mod:`repro.engine.shard`) and each shard's batch walk runs in a
worker process reading the columns and tape out of shared ``mmap`` pages,
with per-shard results merged losslessly.  Under ``"auto"`` the sharded
path is selected when the session has worker budget (``jobs > 1``), every
core was registered by config, and the trace is large enough
(``shard_threshold`` events) for the fan-out to pay for itself.
"""

from __future__ import annotations

import time

from repro.common.errors import ReproError
from repro.common.events import OpKind, Trace
from repro.engine.machineshare import MachineGroup


class EngineError(ReproError):
    """Misuse of an :class:`EngineSession` (reuse, post-run adds…)."""


class EngineSession:
    """One single-pass walk of one trace over any number of cores.

    Usage::

        session = EngineSession(trace)
        session.add(HardDetector(...))
        session.add_config(DetectorConfig("hb-default"))
        results = session.run()   # DetectionResults, in add order

    Sessions are single-use: ``run`` may be called once, and cores cannot
    be added afterwards.  ``add_core`` also accepts auxiliary cores whose
    ``finish`` returns something other than a
    :class:`~repro.reporting.DetectionResult` (e.g. a trace-statistics
    collector); their results appear at the same position in the returned
    list.
    """

    def __init__(
        self,
        trace,
        obs=None,
        path: str = "auto",
        *,
        jobs: int = 1,
        shards: int | None = None,
        tape_cache=None,
        shard_threshold: int | None = None,
    ):
        if path not in ("auto", "batch", "scalar", "sharded"):
            raise EngineError(
                f"unknown engine path {path!r} "
                "(expected auto, batch, scalar or sharded)"
            )
        if isinstance(trace, Trace):
            self._trace = trace
            self._cols = None
        else:  # a ColumnarTrace: materialise event objects only if needed
            self._trace = None
            self._cols = trace
        self.obs = obs
        self.path = path
        self.jobs = max(1, int(jobs))
        self.shards = shards
        self.tape_cache = tape_cache
        if shard_threshold is None:
            from repro.engine.shard import DEFAULT_SHARD_THRESHOLD

            shard_threshold = DEFAULT_SHARD_THRESHOLD
        self.shard_threshold = shard_threshold
        self._cores: list = []
        #: Parallel to ``_cores``: the DetectorConfig a core was registered
        #: with (None for cores added directly) — the sharded path rebuilds
        #: cores from these in worker processes.
        self._configs: list = []
        self._ran = False
        #: Op-kind census estimates of the last telemetry-recorded run.
        self._census: dict | None = None

    @property
    def trace(self) -> Trace:
        """The event-object view of the input (materialised on demand)."""
        trace = self._trace
        if trace is None:
            trace = self._trace = self._cols.to_trace()
        return trace

    def columns(self):
        """The columnar view of the input (memoised either way)."""
        cols = self._cols
        if cols is None:
            cols = self._cols = self._trace.columns()
        return cols

    # ------------------------------------------------------------ registration

    def add(self, detector):
        """Register a detector (via its ``core()``); returns the core."""
        return self.add_core(detector.core())

    def add_config(self, config):
        """Register a harness :class:`DetectorConfig`; returns the core."""
        from repro.harness.detectors import DetectorConfig, make_detector

        config = DetectorConfig.coerce(config)
        core = self.add(make_detector(config))
        self._configs[-1] = config
        return core

    def add_core(self, core):
        """Register a prepared core (detector or auxiliary); returns it."""
        if self._ran:
            raise EngineError("cannot add cores to a session that already ran")
        self._cores.append(core)
        self._configs.append(None)
        return core

    def close(self) -> None:
        """Release the session's columnar resources (idempotent).

        Drops the memoised machine tapes and, when the columnar view is
        ``mmap``-backed (a trace-cache load), releases the mapping — after
        which the input columns must not be reused.  Long sweeps call this
        per cell so file descriptors don't pile up until GC.
        """
        cols = self._cols
        if cols is not None:
            cols.close()

    # --------------------------------------------------------------------- run

    def run(self) -> list:
        """Walk the trace once per replay context; results in add order.

        Cores that share a machine must consume events in lockstep with the
        shared replay, so each :class:`MachineGroup` is driven by one
        interleaved walk.  Independent cores — trace-only detectors and
        machine-backed cores with a unique machine configuration — have no
        cross-core state, so they run in their own tight loops instead,
        which avoids the per-event dispatch overhead entirely.  Either way
        every core sees the exact event sequence ``Detector.run`` would
        feed it, so results are bit-for-bit identical.
        """
        if self._ran:
            raise EngineError("EngineSession is single-use; build a new one")
        if not self._cores:
            raise EngineError("no cores registered")
        self._ran = True
        obs = self.obs
        tracing = obs is not None and obs.emitter.enabled
        recorder = obs.telemetry if obs is not None else None
        if recorder is not None:
            self._census = recorder.observe_trace(self.trace)

        if tracing and self.path not in ("batch", "sharded"):
            for core in self._cores:
                core.begin(self.trace, obs=obs)
            self._walk_traced(recorder)
            return [core.finish() for core in self._cores]

        # Batch path: observability hooks fire per event inside scalar
        # ``step`` implementations, so any active obs (emitter, metrics, or
        # a flight recorder) forces the scalar walk — silently under "auto",
        # loudly under "batch".
        batch_allowed = (
            self.path != "scalar"
            and not tracing
            and recorder is None
            and (obs is None or not obs.active)
        )
        sharded_ok = batch_allowed and all(
            config is not None for config in self._configs
        )
        if self.path == "sharded":
            if not batch_allowed:
                raise EngineError(
                    "engine path 'sharded' is incompatible with active "
                    "observability (emitter, metrics, or flight recorder)"
                )
            if not sharded_ok:
                raise EngineError(
                    "engine path 'sharded' requires every core to be "
                    "registered via add_config, so worker processes can "
                    "rebuild the cores from their configs"
                )
            return self._run_sharded()
        if (
            self.path == "auto"
            and sharded_ok
            and self.jobs > 1
            and self.columns().n >= self.shard_threshold
        ):
            return self._run_sharded()
        if self.path == "batch":
            if not batch_allowed:
                raise EngineError(
                    "engine path 'batch' is incompatible with active "
                    "observability (emitter, metrics, or flight recorder)"
                )
            laggards = [
                core.name
                for core in self._cores
                if not hasattr(core, "begin_batch")
            ]
            if laggards:
                raise EngineError(
                    "engine path 'batch' requires step_batch support, "
                    f"which these cores lack: {', '.join(laggards)}"
                )
        batch_cores = (
            [core for core in self._cores if hasattr(core, "begin_batch")]
            if batch_allowed
            else []
        )
        batch_ids = {id(core) for core in batch_cores}
        scalar_cores = [c for c in self._cores if id(c) not in batch_ids]

        if batch_cores:
            self._walk_batch(batch_cores)

        groups: dict = {}
        for core in scalar_cores:
            machine_config = getattr(core, "machine_config", None)
            if machine_config is None:
                continue
            group = groups.get(machine_config)
            if group is None:
                groups[machine_config] = group = MachineGroup(machine_config)
            group.members.append(core)

        solo: list = []
        for core in scalar_cores:
            machine_config = getattr(core, "machine_config", None)
            group = groups.get(machine_config) if machine_config is not None else None
            if group is not None and len(group.members) > 1:
                core.begin(self.trace, obs=obs, machine=group.lane())
            else:
                solo.append(core)
        for group in groups.values():
            if len(group.members) > 1:
                if recorder is not None:
                    self._walk_group_sampled(group, recorder)
                else:
                    self._walk_group(group)
        for core in solo:
            core.begin(self.trace, obs=obs)
            if recorder is not None:
                self._walk_solo_sampled(core, recorder)
            else:
                step = core.step
                for event in self.trace:
                    step(event)
        return [
            core.finish_batch() if id(core) in batch_ids else core.finish()
            for core in self._cores
        ]

    def _run_sharded(self) -> list:
        # The sharded walk: shard.run_sharded rebuilds each config's core
        # per shard in worker processes and merges the results losslessly.
        from repro.engine.shard import run_sharded

        return run_sharded(
            self.columns(),
            self._configs,
            jobs=self.jobs,
            shards=self.shards,
            tape_cache=self.tape_cache,
        )

    def _walk_batch(self, cores: list) -> None:
        # The vectorized walk: cores consume whole sync runs of the columnar
        # trace in one ``step_batch`` call each.  Machine-backed cores get a
        # MachineTape — the recorded data-path of (columns, machine config),
        # memoised on the columns so repeated sessions replay nothing (and
        # persisted via the tape cache so later *processes* replay nothing).
        from repro.engine.tape import MachineTape

        cols = self.columns()
        for core in cores:
            machine_config = getattr(core, "machine_config", None)
            tape = (
                MachineTape.for_columns(
                    cols, machine_config, cache=self.tape_cache
                )
                if machine_config is not None
                else None
            )
            core.begin_batch(cols, tape)
        for run in cols.sync_runs():
            lo = run.lo
            hi = run.hi
            for core in cores:
                core.step_batch(cols, lo, hi)

    def _walk_group_sampled(self, group: MachineGroup, recorder) -> None:
        # The flight-recorder variant of _walk_group: identical event
        # dispatch (so results stay bit-for-bit), plus one countdown per
        # stepped event; every sample_period-th stepped event times each
        # member's step individually.  The sampled means scale to per-core
        # wall estimates, and the stepped count falls out of the countdown
        # arithmetic — no extra per-event accounting.
        feed = group.feed
        steps = [core.step for core in group.members]
        indices = range(len(steps))
        COMPUTE = OpKind.COMPUTE
        perf = time.perf_counter
        period = recorder.sample_period
        countdown = period
        samples = 0
        spent = [0.0] * len(steps)
        t_walk = perf()
        for event in self.trace:
            feed(event)
            if event.op.kind is not COMPUTE:
                countdown -= 1
                if countdown:
                    for step in steps:
                        step(event)
                else:
                    countdown = period
                    samples += 1
                    for index in indices:
                        t0 = perf()
                        steps[index](event)
                        spent[index] += perf() - t0
        wall = perf() - t_walk
        stepped = samples * period + (period - countdown)
        recorder.record_walk(wall)
        for core, sampled_s in zip(group.members, spent):
            recorder.record_core_walk(core.name, stepped, sampled_s, samples)
        recorder.record_group(len(steps), group.accesses)

    def _walk_solo_sampled(self, core, recorder) -> None:
        # Sampled walk of one independent core (own machine or trace-only).
        step = core.step
        perf = time.perf_counter
        period = recorder.sample_period
        countdown = period
        samples = 0
        spent = 0.0
        t_walk = perf()
        for event in self.trace:
            countdown -= 1
            if countdown:
                step(event)
            else:
                countdown = period
                samples += 1
                t0 = perf()
                step(event)
                spent += perf() - t0
        wall = perf() - t_walk
        stepped = samples * period + (period - countdown)
        recorder.record_walk(wall)
        recorder.record_core_walk(core.name, stepped, spent, samples)

    def _walk_group(self, group: MachineGroup) -> None:
        # COMPUTE events touch only the shared machine's cycle ledger (the
        # group charges it once; lane charges of "compute" are no-ops), and
        # BARRIER events touch no machine state at all — so the member
        # dispatch can skip nothing: members still need BARRIER (resets) but
        # not COMPUTE.
        feed = group.feed
        steps = [core.step for core in group.members]
        COMPUTE = OpKind.COMPUTE
        for event in self.trace:
            feed(event)
            if event.op.kind is not COMPUTE:
                for step in steps:
                    step(event)

    def _walk_traced(self, recorder=None) -> None:
        # Emitter active: every core replays its own machine (no sharing),
        # and the walk emits one span per core with its cumulative step time.
        # Per-core timing is exact here, so a flight recorder (if any) gets
        # samples == stepped rather than a sampled estimate.
        emitter = self.obs.emitter
        steps = [core.step for core in self._cores]
        spent = [0.0] * len(steps)
        perf = time.perf_counter
        t_walk = perf()
        with emitter.span("engine.walk", cores=len(steps)):
            for event in self.trace:
                for index, step in enumerate(steps):
                    t0 = perf()
                    step(event)
                    spent[index] += perf() - t0
        for core, wall in zip(self._cores, spent):
            emitter.emit(
                "span", name=f"engine.core.{core.name}", wall_s=round(wall, 6)
            )
        if recorder is not None:
            events = len(self.trace)
            recorder.record_walk(perf() - t_walk)
            for core, wall in zip(self._cores, spent):
                recorder.record_core_walk(core.name, events, wall, events)


def detect_with_engine(
    trace, detectors, obs=None, path: str = "auto", *, jobs: int = 1
) -> list:
    """Run ``detectors`` (an iterable) over ``trace`` in one session.

    ``trace`` may be a :class:`~repro.common.events.Trace` or a
    :class:`~repro.common.coltrace.ColumnarTrace`; ``path`` selects the walk
    strategy (``"auto"``, ``"batch"``, ``"scalar"``, or ``"sharded"``), and
    ``jobs`` the sharded path's worker budget.
    """
    session = EngineSession(trace, obs=obs, path=path, jobs=jobs)
    for detector in detectors:
        session.add(detector)
    return session.run()
