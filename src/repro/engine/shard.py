"""Address-sharded parallel batch detection: one trace, many processes.

HARD's metadata is *per cache line* (Section 3.1), which makes the check
phase data-parallel across the address space: what a detector does at one
location depends only on (a) the global synchronisation history — lock
registers, vector clocks, barrier episodes — and (b) the access/coherence
history of that location.  Every batch kernel in this repository preserves
that split exactly: sync events (LOCK/UNLOCK/BARRIER) mutate only
per-thread or global state, memory events mutate only per-line/per-chunk
state, and COMPUTE events touch nothing but the prerecorded tape totals.

A **shard** is therefore a sub-trace containing *all* sync events plus the
memory events whose addresses the shard owns (COMPUTE dropped), paired
with the slice of the machine tape whose hooks land on owned lines.
Running the unchanged ``step_batch`` kernel over each shard reproduces the
exact per-location behaviour of the full trace, and the per-shard results
merge back losslessly:

* **reports** carry shard-local sequence numbers; the shard's local→global
  index map rewrites them, and a stable sort by global seq reproduces the
  scalar log order (all chunks of one event live in one shard);
* **counters / extra cycles** are linear in per-event occurrence counts.
  Sync-derived counts are repeated in every shard, so the merge subtracts
  ``(shards - 1)`` times a cheap *sync-only baseline* (the same kernel run
  over a shard with no memory events at all); memory-derived counts appear
  in exactly one shard and sum directly;
* **shared data-path totals** (machine cycles, cache/bus stats) come from
  the real tape, added exactly once by the parent — shard tapes carry
  zeroed totals.

Ownership is by *unit*: the largest power-of-two granularity any
registered detector tracks (cache lines for machine-backed cores, chunk
granularity for ideal ones), hashed to a shard id.  Events spanning
multiple units are glued by a union-find pass so every chunk of one event
— and every line its coherence traffic touches — resolves to one shard.
The partition is a pure function of (columns, unit size, shard count), so
workers recompute it locally instead of shipping it.

Workers never receive pickled event data: the parent spills the columnar
encoding and the recorded tapes to disk (or reuses the trace/tape cache
entries already there) and ships only file paths; each worker ``mmap``-s
them and gathers its own shard from the shared pages.
"""

from __future__ import annotations

import atexit
import mmap
import shutil
import tempfile
from array import array
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.common.coltrace import _COLUMNS, KIND_COMPUTE, ColumnarTrace
from repro.common.stats import StatCounters
from repro.engine.session import EngineError
from repro.engine.tape import MachineTape
from repro.reporting import DetectionResult, RaceReportLog

#: Auto-path event-count threshold: below this, process fan-out overhead
#: dominates and the single-process batch walk wins.
DEFAULT_SHARD_THRESHOLD = 50_000

_U64 = 0xFFFFFFFFFFFFFFFF


def _mix(x: int) -> int:
    # splitmix64 finalizer: a cheap, well-distributed unit -> shard hash.
    x &= _U64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _U64
    return x ^ (x >> 31)


def core_alignment(core) -> int:
    """The largest address granularity one core's state is keyed by.

    Machine-backed cores key metadata by cache line (both levels); every
    core additionally tracks chunks at its detector's granularity.  The
    shard unit must cover the maximum so no tracked record ever straddles
    an ownership boundary.
    """
    align = 4
    machine_config = getattr(core, "machine_config", None)
    if machine_config is not None:
        align = max(
            align,
            machine_config.l1.line_size,
            machine_config.l2.line_size,
        )
    detector = getattr(core, "d", None)
    holders = [core, detector]
    if detector is not None:
        holders.append(getattr(detector, "config", None))
    for holder in holders:
        granularity = getattr(holder, "granularity", None)
        if isinstance(granularity, int):
            align = max(align, granularity)
    return align


def unit_shift_for(cores) -> int:
    """``log2`` of the shard ownership unit covering every core's state."""
    align = 4
    for core in cores:
        align = max(align, core_alignment(core))
    if align & (align - 1):
        raise EngineError(f"shard unit must be a power of two, got {align}")
    return align.bit_length() - 1


def build_partition(
    cols: ColumnarTrace, unit_shift: int, num_shards: int
) -> dict[int, int]:
    """Shard-owner overrides for units linked by multi-unit events.

    Most units hash independently (``_mix(unit) % num_shards``); an event
    whose byte range spans several units forces them into one shard, which
    a union-find over the spanning events resolves.  Returns the override
    map for exactly the linked units — a pure function of the inputs, so
    every worker recomputes the identical partition locally.
    """
    parent: dict[int, int] = {}

    def find(u: int) -> int:
        root = u
        while parent[root] != root:
            root = parent[root]
        while parent[u] != root:
            parent[u], u = root, parent[u]
        return root

    unit_size = 1 << unit_shift
    offset_mask = unit_size - 1
    for kind, addr, size in zip(cols.kind, cols.addr, cols.size):
        if kind > 1 or (addr & offset_mask) + size <= unit_size:
            continue
        first = addr >> unit_shift
        last = (addr + size - 1) >> unit_shift
        if first not in parent:
            parent[first] = first
        root = find(first)
        for unit in range(first + 1, last + 1):
            if unit not in parent:
                parent[unit] = root
            else:
                parent[find(unit)] = root
    return {unit: _mix(find(unit)) % num_shards for unit in parent}


def build_shard(
    cols: ColumnarTrace,
    unit_shift: int,
    overrides: dict[int, int],
    num_shards: int,
    shard_id: int,
    *,
    sync_only: bool = False,
) -> tuple[ColumnarTrace, array]:
    """Gather one shard's sub-trace: all sync events + owned memory events.

    Returns ``(shard_cols, keep)`` where ``keep[j]`` is the global index of
    the shard's ``j``-th event (the report seq-remap table).  COMPUTE
    events are dropped — batch kernels ignore them and their cycles live on
    the tape totals the parent adds once.  With ``sync_only`` every memory
    event is dropped too: the merge baseline.
    """
    kinds = cols.kind
    addrs = cols.addr
    keep = array("q")
    keep_append = keep.append
    owner_memo: dict[int, int] = {}
    get_override = overrides.get
    for i, kind in enumerate(kinds):
        if kind <= 1:  # READ / WRITE
            if sync_only:
                continue
            unit = addrs[i] >> unit_shift
            owner = owner_memo.get(unit)
            if owner is None:
                owner = get_override(unit)
                if owner is None:
                    owner = _mix(unit) % num_shards
                owner_memo[unit] = owner
            if owner == shard_id:
                keep_append(i)
        elif kind != KIND_COMPUTE:  # LOCK / UNLOCK / BARRIER
            keep_append(i)

    shard = ColumnarTrace()
    shard.n = len(keep)
    shard.num_threads = cols.num_threads
    shard.label = cols.label
    shard.sites = cols.sites
    shard.bug_site_ids = cols.bug_site_ids
    for name, typecode in _COLUMNS:
        column = getattr(cols, name)
        setattr(shard, name, array(typecode, map(column.__getitem__, keep)))
    return shard, keep


def build_shard_tape(
    tape: MachineTape,
    keep: array,
    unit_shift: int,
    overrides: dict[int, int],
    num_shards: int,
    shard_id: int,
) -> MachineTape:
    """Slice one machine tape down to a shard's owned lines.

    Hooks are filtered by the *line they touch* (a line belongs to exactly
    one unit), not by the event that caused them: an access in another
    shard can evict or invalidate a line this shard owns, and that hook
    must replay here.  Hooks between two kept events attach to the span of
    the *next* kept event — the kernels apply an event's span before
    processing the event, so global hook order relative to every owned
    line's accesses is preserved.  Totals (machine cycles/stats) are
    zeroed: the parent adds the real tape's totals exactly once.
    """
    out = MachineTape.empty(len(keep), tape.machine_config)
    hook_off = tape.hook_off
    hook_code = tape.hook_code
    hook_line = tape.hook_line
    hook_core = tape.hook_core
    hook_aux = tape.hook_aux
    pig = tape.pig
    sharer_off = tape.sharer_off
    sharer_line = tape.sharer_line
    sharer_flag = tape.sharer_flag

    new_off = out.hook_off
    code_out = out.hook_code.append
    line_out = out.hook_line.append
    core_out = out.hook_core.append
    aux_out = out.hook_aux.append
    pig_out = out.pig
    s_off_out = out.sharer_off
    s_line_out = out.sharer_line.append
    s_flag_out = out.sharer_flag.append

    owner_memo: dict[int, int] = {}
    get_override = overrides.get
    h = 0
    kept_hooks = 0
    kept_sharers = 0
    for j, g in enumerate(keep):
        h1 = hook_off[g + 1]
        while h < h1:
            line_addr = hook_line[h]
            unit = line_addr >> unit_shift
            owner = owner_memo.get(unit)
            if owner is None:
                owner = get_override(unit)
                if owner is None:
                    owner = _mix(unit) % num_shards
                owner_memo[unit] = owner
            if owner == shard_id:
                code_out(hook_code[h])
                line_out(line_addr)
                core_out(hook_core[h])
                aux_out(hook_aux[h])
                kept_hooks += 1
            h += 1
        new_off[j + 1] = kept_hooks
        pig_out[j] = pig[g]
        for s in range(sharer_off[g], sharer_off[g + 1]):
            s_line_out(sharer_line[s])
            s_flag_out(sharer_flag[s])
            kept_sharers += 1
        s_off_out[j + 1] = kept_sharers
    return out


# --------------------------------------------------------------- shard detect


def _detect_shard(
    cols: ColumnarTrace,
    tapes: dict,
    configs,
    unit_shift: int,
    overrides: dict[int, int],
    num_shards: int,
    shard_id: int,
    *,
    sync_only: bool = False,
) -> list[tuple]:
    """Run every config's batch kernel over one shard; plain-data results.

    Returns one ``(reports, stats, extra_cycles, cycles)`` tuple per
    config, where ``reports`` carry **global** sequence numbers (remapped
    through the shard's keep table) and stats is a plain dict — picklable,
    mergeable, and independent of worker scheduling.
    """
    from repro.harness.detectors import make_detector

    shard, keep = build_shard(
        cols, unit_shift, overrides, num_shards, shard_id, sync_only=sync_only
    )
    shard_tapes: dict = {}
    outcomes: list[tuple] = []
    for config in configs:
        core = make_detector(config).core()
        machine_config = getattr(core, "machine_config", None)
        if machine_config is not None:
            tape = shard_tapes.get(machine_config)
            if tape is None:
                if sync_only:
                    # No memory events -> no owned lines -> empty hook
                    # stream; the zero tape is the exact slice.
                    tape = MachineTape.empty(shard.n, machine_config)
                else:
                    tape = build_shard_tape(
                        tapes[machine_config],
                        keep,
                        unit_shift,
                        overrides,
                        num_shards,
                        shard_id,
                    )
                shard_tapes[machine_config] = tape
            core.begin_batch(shard, tape)
        else:
            core.begin_batch(shard, None)
        for run in shard.sync_runs():
            core.step_batch(shard, run.lo, run.hi)
        result = core.finish_batch()
        reports = [
            (
                keep[r.seq],
                r.thread_id,
                r.addr,
                r.size,
                r.site,
                r.is_write,
                r.detail,
            )
            for r in result.reports
        ]
        outcomes.append(
            (
                reports,
                result.stats.snapshot(),
                result.detector_extra_cycles,
                result.cycles,
            )
        )
    return outcomes


def _merge_results(
    configs,
    names,
    machine_configs,
    tapes: dict,
    shard_outcomes: list[list[tuple]],
    baseline: list[tuple] | None,
    num_shards: int,
) -> list[DetectionResult]:
    """Losslessly reassemble per-shard outcomes into DetectionResults."""
    results: list[DetectionResult] = []
    for index in range(len(configs)):
        merged: Counter = Counter()
        all_reports: list[tuple] = []
        extra = 0
        cycles = 0
        for outcomes in shard_outcomes:
            reports, stats, shard_extra, shard_cycles = outcomes[index]
            all_reports.extend(reports)
            merged.update(stats)
            extra += shard_extra
            cycles += shard_cycles
        if baseline is not None and num_shards > 1:
            _, base_stats, base_extra, base_cycles = baseline[index]
            repeat = num_shards - 1
            for key, value in base_stats.items():
                merged[key] -= value * repeat
            extra -= base_extra * repeat
            cycles -= base_cycles * repeat
        machine_config = machine_configs[index]
        if machine_config is not None:
            tape = tapes[machine_config]
            merged.update(tape.machine_stats)
            merged.update(tape.bus_stats)
            cycles += tape.machine_cycles
        # Stable sort by global seq: every event lives in exactly one
        # shard, so intra-event report order (chunk order) is preserved.
        all_reports.sort(key=lambda entry: entry[0])
        log = RaceReportLog(names[index])
        for seq, thread_id, addr, size, site, is_write, detail in all_reports:
            log.add(
                seq=seq,
                thread_id=thread_id,
                addr=addr,
                size=size,
                site=site,
                is_write=is_write,
                detail=detail,
            )
        stats = StatCounters()
        stats._counts.update(merged)
        results.append(
            DetectionResult(
                detector=names[index],
                reports=log,
                stats=stats,
                cycles=cycles,
                detector_extra_cycles=extra,
            )
        )
    return results


# ------------------------------------------------------------- worker protocol


@dataclass(frozen=True)
class ShardSpec:
    """Everything a shard worker needs — paths and plain values only.

    No event data crosses the process boundary: workers ``mmap`` the
    columnar file and the tape files and read the shared pages directly.
    """

    cols_path: str
    tape_paths: tuple  # ((MachineConfig, path), ...)
    configs: tuple
    unit_shift: int
    num_shards: int


_SHARD_CTX = None

#: Process-lifetime spill directory for traces/tapes that have no cache
#: entry on disk; removed at interpreter exit.
_SPILL_DIR = None


def _spill_dir() -> Path:
    global _SPILL_DIR
    if _SPILL_DIR is None:
        _SPILL_DIR = Path(tempfile.mkdtemp(prefix="repro-shard-"))
        atexit.register(shutil.rmtree, _SPILL_DIR, ignore_errors=True)
    return _SPILL_DIR


def _map_file(path: str) -> mmap.mmap:
    with open(path, "rb") as fh:
        return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)


def _shard_init(spec: ShardSpec) -> None:
    """Pool initializer: map the shared files, recompute the partition."""
    global _SHARD_CTX
    cols = ColumnarTrace.from_bytes(_map_file(spec.cols_path))
    tapes = {
        machine_config: MachineTape.from_bytes(_map_file(path), machine_config)
        for machine_config, path in spec.tape_paths
    }
    overrides = build_partition(cols, spec.unit_shift, spec.num_shards)
    _SHARD_CTX = (spec, cols, tapes, overrides)


def _shard_run(shard_id: int) -> tuple[int, list[tuple]]:
    """Evaluate one shard in this worker process."""
    ctx = _SHARD_CTX
    assert ctx is not None, "shard worker used before _shard_init"
    spec, cols, tapes, overrides = ctx
    outcomes = _detect_shard(
        cols,
        tapes,
        spec.configs,
        spec.unit_shift,
        overrides,
        spec.num_shards,
        shard_id,
    )
    return shard_id, outcomes


def _reset_shard_worker() -> None:
    """Release the serial path's context (mmaps close with it)."""
    global _SHARD_CTX
    if _SHARD_CTX is not None:
        _, cols, tapes, _ = _SHARD_CTX
        cols.close()
        for tape in tapes.values():
            tape.close()
    _SHARD_CTX = None


def _shared_paths(cols: ColumnarTrace, tapes: dict, tape_cache):
    """On-disk homes for the columns and tapes workers will mmap.

    Reuses the trace-cache file the columns were loaded from and the tape
    cache's entries when available; anything homeless spills to a
    process-lifetime temp directory (content-addressed, so repeated
    sessions over the same trace spill once).
    """
    from repro.common.fsio import atomic_write_bytes
    from repro.harness.tracecache import TapeCache

    cols_path = cols._source_path
    if cols_path is None or not Path(cols_path).exists():
        cols_path = _spill_dir() / f"cols_{cols.content_digest()}.cols"
        if not cols_path.exists():
            atomic_write_bytes(cols_path, cols.to_bytes())
        cols._source_path = cols_path

    spill_cache = None
    tape_paths = []
    for machine_config, tape in tapes.items():
        path = None
        if tape_cache is not None and tape_cache.enabled:
            path = tape_cache.path_for(cols, machine_config)
            if path is not None and not path.exists():
                tape_cache.store(cols, tape)
        if path is None or not path.exists():
            if spill_cache is None:
                spill_cache = TapeCache(_spill_dir())
            path = spill_cache.path_for(cols, machine_config)
            if not path.exists():
                spill_cache.store(cols, tape)
        tape_paths.append((machine_config, str(path)))
    return str(cols_path), tuple(tape_paths)


# ---------------------------------------------------------------- entry point


def run_sharded(
    cols: ColumnarTrace,
    configs,
    *,
    jobs: int = 1,
    shards: int | None = None,
    tape_cache=None,
) -> list[DetectionResult]:
    """Detect over ``cols`` with every config, sharded by address.

    Results are bit-for-bit identical to the scalar reference path (pinned
    by ``tests/engine/test_sharded_path.py``).  ``jobs`` bounds worker
    processes (1 = run every shard serially in-process, still exercising
    the full shard/merge machinery); ``shards`` defaults to ``jobs`` (or 2
    when serial).  ``tape_cache`` persists the machine tapes so reruns —
    and the workers — skip the simulator entirely.
    """
    from repro.harness.detectors import DetectorConfig, make_detector
    from repro.harness.parallel import fan_out

    configs = tuple(DetectorConfig.coerce(config) for config in configs)
    if not configs:
        raise EngineError("run_sharded needs at least one detector config")
    cores = [make_detector(config).core() for config in configs]
    laggards = [
        core.name for core in cores if not hasattr(core, "begin_batch")
    ]
    if laggards:
        raise EngineError(
            "engine path 'sharded' requires step_batch support, "
            f"which these cores lack: {', '.join(laggards)}"
        )
    jobs = max(1, int(jobs))
    if shards is None:
        shards = jobs if jobs > 1 else 2
    shards = max(1, int(shards))
    unit_shift = unit_shift_for(cores)
    names = [core.name for core in cores]
    machine_configs = [
        getattr(core, "machine_config", None) for core in cores
    ]
    del cores

    # Record (or cache-load) the real tapes once, in the parent.
    tapes: dict = {}
    for machine_config in machine_configs:
        if machine_config is not None and machine_config not in tapes:
            tapes[machine_config] = MachineTape.for_columns(
                cols, machine_config, cache=tape_cache
            )

    # The sync-only baseline the merge subtracts (shards - 1) times.
    baseline = (
        _detect_shard(
            cols, tapes, configs, unit_shift, {}, 1, 0, sync_only=True
        )
        if shards > 1
        else None
    )

    shard_outcomes: list = [None] * shards
    if jobs > 1 and shards > 1:
        cols_path, tape_paths = _shared_paths(cols, tapes, tape_cache)
        spec = ShardSpec(
            cols_path=cols_path,
            tape_paths=tape_paths,
            configs=configs,
            unit_shift=unit_shift,
            num_shards=shards,
        )
        for shard_id, outcomes in fan_out(
            tuple(range(shards)),
            _shard_run,
            jobs=jobs,
            initializer=_shard_init,
            initargs=(spec,),
            serial_cleanup=_reset_shard_worker,
        ):
            shard_outcomes[shard_id] = outcomes
    else:
        overrides = build_partition(cols, unit_shift, shards)
        for shard_id in range(shards):
            shard_outcomes[shard_id] = _detect_shard(
                cols, tapes, configs, unit_shift, overrides, shards, shard_id
            )

    return _merge_results(
        configs,
        names,
        machine_configs,
        tapes,
        shard_outcomes,
        baseline,
        shards,
    )
