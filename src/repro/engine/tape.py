"""Machine replay tapes: the data-path of one trace, recorded once.

Every machine-backed detector core drives the simulated CMP through the
same *canonical* access sequence (see
:class:`repro.reporting.DetectorCore`), so for a given
(:class:`~repro.common.coltrace.ColumnarTrace`,
:class:`~repro.common.config.MachineConfig`) pair the cache/coherence
behaviour — fills and their sources, writebacks, evictions, invalidations,
L2 displacements, per-access piggyback opportunities, post-access sharer
flags, total data-path cycles and counters — is a pure function of the
trace.  :class:`MachineTape` records that behaviour once, by replaying the
trace through a real :class:`~repro.sim.machine.Machine` with a recording
listener attached, into flat packed arrays the vectorized batch kernels
(``DetectorCore.step_batch``) consume without touching the simulator again.

This is :class:`~repro.engine.machineshare.MachineGroup` taken to its
logical end: the group deduplicates the replay *across cores within one
walk*; the tape deduplicates it *across walks* — a second
:class:`~repro.engine.EngineSession` over the same trace (a benchmark
round, a fuzz-oracle ablation, an experiment-runner memo hit) replays
nothing at all.

Tape layout (all dense, ``n`` = number of trace events):

* ``hook_off['q', n+1]`` — per-event spans into the hook stream;
* ``hook_code['B']``/``hook_line['q']``/``hook_core['i']``/``hook_aux['i']``
  — one record per coherence-listener callback, in callback order.
  ``hook_aux`` carries the supplying core for cache-to-cache fills and the
  dirty flag for L1 evictions;
* ``pig['B', n]`` — per-event metadata-piggyback opportunity count
  (memory events only: one per non-memory fill + one per dirty L1 victim,
  exactly the transfers HARD's metadata rides — Section 3.4);
* ``sharer_off['q', n+1]`` / ``sharer_line['q']`` / ``sharer_flag['B']``
  — for each line a memory event touched, whether any *other* core still
  held it once the access completed (the broadcast predicate of Figure 6);
* ``machine_cycles`` / ``machine_stats`` / ``bus_stats`` — the shared
  data-path totals a kernel merges under its private detector charges.
"""

from __future__ import annotations

import json
import struct
from array import array

from repro.common.coltrace import (
    KIND_BARRIER,
    KIND_COMPUTE,
    ColumnarTrace,
)
from repro.common.config import MachineConfig
from repro.common.errors import ProgramError
from repro.sim.coherence import FillSource, MachineListener, SourceKind
from repro.sim.machine import Machine

#: On-disk tape format magic + version (bump on any layout change).
_TAPE_MAGIC = b"RPRTAPE1"
TAPE_FORMAT_VERSION = 1

#: (attribute, array typecode) of every packed tape array, in
#: serialisation order.
_TAPE_ARRAYS = (
    ("hook_off", "q"),
    ("hook_code", "B"),
    ("hook_line", "q"),
    ("hook_core", "i"),
    ("hook_aux", "i"),
    ("pig", "B"),
    ("sharer_off", "q"),
    ("sharer_line", "q"),
    ("sharer_flag", "B"),
)


def machine_signature(machine_config: MachineConfig) -> str:
    """A stable string identifying one machine configuration.

    ``MachineConfig`` is a frozen dataclass of primitives, so its ``repr``
    is deterministic and covers every field — exactly what the tape cache
    needs to key entries by configuration.
    """
    return repr(machine_config)

#: Size in bytes of a lock word (mirrors repro.core.detector.LOCK_WORD_BYTES;
#: redefined here to keep the tape importable without the detector stack).
_LOCK_WORD_BYTES = 4

#: Hook stream opcodes.
HOOK_FILL_MEM = 0
HOOK_FILL_L2 = 1
HOOK_FILL_CORE = 2
HOOK_WRITEBACK = 3
HOOK_L1_EVICT = 4
HOOK_INVALIDATE = 5
HOOK_L2_EVICT = 6


class _Recorder(MachineListener):
    """Appends every coherence callback to the flat hook arrays."""

    __slots__ = ("code", "line", "core", "aux")

    def __init__(self):
        self.code = array("B")
        self.line = array("q")
        self.core = array("i")
        self.aux = array("i")

    def _append(self, code: int, line_addr: int, core: int, aux: int) -> None:
        self.code.append(code)
        self.line.append(line_addr)
        self.core.append(core)
        self.aux.append(aux)

    def on_fill(self, core: int, line_addr: int, source: FillSource) -> None:
        kind = source.kind
        if kind is SourceKind.MEMORY:
            self._append(HOOK_FILL_MEM, line_addr, core, 0)
        elif kind is SourceKind.L2:
            self._append(HOOK_FILL_L2, line_addr, core, 0)
        else:
            self._append(HOOK_FILL_CORE, line_addr, core, source.core)

    def on_writeback(self, core: int, line_addr: int) -> None:
        self._append(HOOK_WRITEBACK, line_addr, core, 0)

    def on_l1_evict(self, core: int, line_addr: int, dirty: bool) -> None:
        self._append(HOOK_L1_EVICT, line_addr, core, 1 if dirty else 0)

    def on_invalidate(self, core: int, line_addr: int) -> None:
        self._append(HOOK_INVALIDATE, line_addr, core, 0)

    def on_l2_evict(self, line_addr: int) -> None:
        self._append(HOOK_L2_EVICT, line_addr, -1, 0)


class MachineTape:
    """The recorded data-path of one columnar trace on one machine config."""

    __slots__ = (
        "machine_config",
        "hook_off",
        "hook_code",
        "hook_line",
        "hook_core",
        "hook_aux",
        "pig",
        "sharer_off",
        "sharer_line",
        "sharer_flag",
        "machine_cycles",
        "machine_stats",
        "bus_stats",
        "_buffer",
        "__weakref__",
    )

    def __init__(self, cols: ColumnarTrace, machine_config: MachineConfig):
        self.machine_config = machine_config
        self._buffer = None
        n = cols.n
        machine = Machine(machine_config)
        recorder = _Recorder()
        machine.add_listener(recorder)

        hook_off = array("q", bytes(8 * (n + 1)))
        pig = array("B", bytes(n))
        sharer_off = array("q", bytes(8 * (n + 1)))
        sharer_line = array("q")
        sharer_flag = array("B")

        access = machine.access
        charge = machine.charge
        has_other_sharers = machine.has_other_sharers
        core_for_thread = machine.core_for_thread
        memory_source = SourceKind.MEMORY
        n_sharers = 0

        kinds = cols.kind
        tids = cols.tid
        addrs = cols.addr
        sizes = cols.size
        cycles_col = cols.cycles
        for i in range(n):
            hook_off[i] = len(recorder.code)
            sharer_off[i] = n_sharers
            kind = kinds[i]
            if kind <= 1:  # READ / WRITE
                core = core_for_thread(tids[i])
                result = access(core, addrs[i], sizes[i], kind == 1)
                count = 0
                for line_result in result.lines:
                    source = line_result.fill_source
                    if source is not None and source.kind is not memory_source:
                        count += 1
                    victim = line_result.l1_victim
                    if victim is not None and victim.dirty:
                        count += 1
                pig[i] = count
                for line_result in result.lines:
                    line_addr = line_result.line_addr
                    sharer_line.append(line_addr)
                    sharer_flag.append(
                        1 if has_other_sharers(line_addr, excluding=core) else 0
                    )
                    n_sharers += 1
            elif kind == KIND_COMPUTE:
                charge(cycles_col[i], "compute")
            elif kind != KIND_BARRIER:  # LOCK / UNLOCK
                access(core_for_thread(tids[i]), addrs[i], _LOCK_WORD_BYTES, True)
        hook_off[n] = len(recorder.code)
        sharer_off[n] = n_sharers

        machine.remove_listener(recorder)
        self.hook_off = hook_off
        self.hook_code = recorder.code
        self.hook_line = recorder.line
        self.hook_core = recorder.core
        self.hook_aux = recorder.aux
        self.pig = pig
        self.sharer_off = sharer_off
        self.sharer_line = sharer_line
        self.sharer_flag = sharer_flag
        self.machine_cycles = machine.cycles
        self.machine_stats = machine.stats.snapshot()
        self.bus_stats = machine.bus.stats.snapshot()

    @classmethod
    def for_columns(
        cls, cols: ColumnarTrace, machine_config: MachineConfig, cache=None
    ) -> "MachineTape":
        """The tape for ``(cols, machine_config)``, memoised on ``cols``.

        With a :class:`~repro.harness.tracecache.TapeCache`, a memo miss
        first tries the on-disk cache (mmap-loaded, zero decode cost) and a
        fresh recording is persisted for every later process and session —
        so each (trace, machine config) pair is simulated once *ever*.
        """
        tape = cols._tapes.get(machine_config)
        if tape is None:
            if cache is not None:
                tape = cache.load(cols, machine_config)
            if tape is None:
                tape = cls(cols, machine_config)
                if cache is not None:
                    cache.store(cols, tape)
            cols._tapes[machine_config] = tape
        return tape

    @classmethod
    def empty(cls, n: int, machine_config: MachineConfig | None = None) -> "MachineTape":
        """An all-zeros tape over ``n`` events (no hooks, no totals).

        The sharded path's stand-in where no real data-path applies: shard
        kernels replay only the hooks a shard owns, and the parent adds the
        real tape's shared totals exactly once at merge time.
        """
        self = cls.__new__(cls)
        self.machine_config = machine_config
        self._buffer = None
        self.hook_off = array("q", bytes(8 * (n + 1)))
        self.hook_code = array("B")
        self.hook_line = array("q")
        self.hook_core = array("i")
        self.hook_aux = array("i")
        self.pig = array("B", bytes(n))
        self.sharer_off = array("q", bytes(8 * (n + 1)))
        self.sharer_line = array("q")
        self.sharer_flag = array("B")
        self.machine_cycles = 0
        self.machine_stats = {}
        self.bus_stats = {}
        return self

    # ---------------------------------------------------------- serialisation

    def to_bytes(self) -> bytes:
        """Serialise to the versioned zero-copy binary form.

        Same shape as the columnar trace format: magic + JSON header +
        8-byte-aligned packed arrays, so :meth:`from_bytes` can cast the
        arrays straight out of an ``mmap`` without decoding.
        """
        payload_parts: list[bytes] = []
        arrays_meta: dict[str, list] = {}
        offset = 0
        for name, typecode in _TAPE_ARRAYS:
            column = getattr(self, name)
            raw = (
                column.tobytes() if isinstance(column, array) else bytes(column)
            )
            pad = (-offset) % 8
            if pad:
                payload_parts.append(b"\x00" * pad)
                offset += pad
            arrays_meta[name] = [typecode, offset, len(raw)]
            payload_parts.append(raw)
            offset += len(raw)
        header = {
            "version": TAPE_FORMAT_VERSION,
            "machine_cycles": self.machine_cycles,
            "machine_stats": dict(self.machine_stats),
            "bus_stats": dict(self.bus_stats),
            "arrays": arrays_meta,
        }
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        prefix = _TAPE_MAGIC + struct.pack(
            "<II", TAPE_FORMAT_VERSION, len(header_bytes)
        )
        pad = (-(len(prefix) + len(header_bytes))) % 8
        return b"".join([prefix, header_bytes, b"\x00" * pad, *payload_parts])

    @classmethod
    def from_bytes(
        cls, buf, machine_config: MachineConfig | None = None
    ) -> "MachineTape":
        """Deserialise from :meth:`to_bytes` output.

        ``buf`` may be ``bytes`` or an ``mmap.mmap``; arrays become
        zero-copy ``memoryview`` casts into it either way.
        """
        view = memoryview(buf)
        if bytes(view[: len(_TAPE_MAGIC)]) != _TAPE_MAGIC:
            raise ProgramError("not a machine tape buffer (bad magic)")
        version, header_len = struct.unpack_from("<II", view, len(_TAPE_MAGIC))
        if version != TAPE_FORMAT_VERSION:
            raise ProgramError(
                f"unsupported machine tape format version {version} "
                f"(expected {TAPE_FORMAT_VERSION})"
            )
        header_start = len(_TAPE_MAGIC) + 8
        header = json.loads(
            bytes(view[header_start : header_start + header_len])
        )
        payload_start = header_start + header_len
        payload_start += (-payload_start) % 8

        self = cls.__new__(cls)
        self.machine_config = machine_config
        self._buffer = buf
        self.machine_cycles = header["machine_cycles"]
        self.machine_stats = header["machine_stats"]
        self.bus_stats = header["bus_stats"]
        for name, typecode in _TAPE_ARRAYS:
            code, offset, nbytes = header["arrays"][name]
            if code != typecode:
                raise ProgramError(
                    f"tape array {name!r} typecode mismatch: "
                    f"{code!r} != {typecode!r}"
                )
            start = payload_start + offset
            setattr(self, name, view[start : start + nbytes].cast(typecode))
        return self

    def close(self) -> None:
        """Release mmap-backed resources deterministically (idempotent)."""
        buf = self._buffer
        if buf is None:
            return
        for name, _ in _TAPE_ARRAYS:
            column = getattr(self, name, None)
            if isinstance(column, memoryview):
                column.release()
                setattr(self, name, ())
        self._buffer = None
        close_buf = getattr(buf, "close", None)
        if close_buf is not None:
            close_buf()
