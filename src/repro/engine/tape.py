"""Machine replay tapes: the data-path of one trace, recorded once.

Every machine-backed detector core drives the simulated CMP through the
same *canonical* access sequence (see
:class:`repro.reporting.DetectorCore`), so for a given
(:class:`~repro.common.coltrace.ColumnarTrace`,
:class:`~repro.common.config.MachineConfig`) pair the cache/coherence
behaviour — fills and their sources, writebacks, evictions, invalidations,
L2 displacements, per-access piggyback opportunities, post-access sharer
flags, total data-path cycles and counters — is a pure function of the
trace.  :class:`MachineTape` records that behaviour once, by replaying the
trace through a real :class:`~repro.sim.machine.Machine` with a recording
listener attached, into flat packed arrays the vectorized batch kernels
(``DetectorCore.step_batch``) consume without touching the simulator again.

This is :class:`~repro.engine.machineshare.MachineGroup` taken to its
logical end: the group deduplicates the replay *across cores within one
walk*; the tape deduplicates it *across walks* — a second
:class:`~repro.engine.EngineSession` over the same trace (a benchmark
round, a fuzz-oracle ablation, an experiment-runner memo hit) replays
nothing at all.

Tape layout (all dense, ``n`` = number of trace events):

* ``hook_off['q', n+1]`` — per-event spans into the hook stream;
* ``hook_code['B']``/``hook_line['q']``/``hook_core['i']``/``hook_aux['i']``
  — one record per coherence-listener callback, in callback order.
  ``hook_aux`` carries the supplying core for cache-to-cache fills and the
  dirty flag for L1 evictions;
* ``pig['B', n]`` — per-event metadata-piggyback opportunity count
  (memory events only: one per non-memory fill + one per dirty L1 victim,
  exactly the transfers HARD's metadata rides — Section 3.4);
* ``sharer_off['q', n+1]`` / ``sharer_line['q']`` / ``sharer_flag['B']``
  — for each line a memory event touched, whether any *other* core still
  held it once the access completed (the broadcast predicate of Figure 6);
* ``machine_cycles`` / ``machine_stats`` / ``bus_stats`` — the shared
  data-path totals a kernel merges under its private detector charges.
"""

from __future__ import annotations

from array import array

from repro.common.coltrace import (
    KIND_BARRIER,
    KIND_COMPUTE,
    ColumnarTrace,
)
from repro.common.config import MachineConfig
from repro.sim.coherence import FillSource, MachineListener, SourceKind
from repro.sim.machine import Machine

#: Size in bytes of a lock word (mirrors repro.core.detector.LOCK_WORD_BYTES;
#: redefined here to keep the tape importable without the detector stack).
_LOCK_WORD_BYTES = 4

#: Hook stream opcodes.
HOOK_FILL_MEM = 0
HOOK_FILL_L2 = 1
HOOK_FILL_CORE = 2
HOOK_WRITEBACK = 3
HOOK_L1_EVICT = 4
HOOK_INVALIDATE = 5
HOOK_L2_EVICT = 6


class _Recorder(MachineListener):
    """Appends every coherence callback to the flat hook arrays."""

    __slots__ = ("code", "line", "core", "aux")

    def __init__(self):
        self.code = array("B")
        self.line = array("q")
        self.core = array("i")
        self.aux = array("i")

    def _append(self, code: int, line_addr: int, core: int, aux: int) -> None:
        self.code.append(code)
        self.line.append(line_addr)
        self.core.append(core)
        self.aux.append(aux)

    def on_fill(self, core: int, line_addr: int, source: FillSource) -> None:
        kind = source.kind
        if kind is SourceKind.MEMORY:
            self._append(HOOK_FILL_MEM, line_addr, core, 0)
        elif kind is SourceKind.L2:
            self._append(HOOK_FILL_L2, line_addr, core, 0)
        else:
            self._append(HOOK_FILL_CORE, line_addr, core, source.core)

    def on_writeback(self, core: int, line_addr: int) -> None:
        self._append(HOOK_WRITEBACK, line_addr, core, 0)

    def on_l1_evict(self, core: int, line_addr: int, dirty: bool) -> None:
        self._append(HOOK_L1_EVICT, line_addr, core, 1 if dirty else 0)

    def on_invalidate(self, core: int, line_addr: int) -> None:
        self._append(HOOK_INVALIDATE, line_addr, core, 0)

    def on_l2_evict(self, line_addr: int) -> None:
        self._append(HOOK_L2_EVICT, line_addr, -1, 0)


class MachineTape:
    """The recorded data-path of one columnar trace on one machine config."""

    __slots__ = (
        "machine_config",
        "hook_off",
        "hook_code",
        "hook_line",
        "hook_core",
        "hook_aux",
        "pig",
        "sharer_off",
        "sharer_line",
        "sharer_flag",
        "machine_cycles",
        "machine_stats",
        "bus_stats",
    )

    def __init__(self, cols: ColumnarTrace, machine_config: MachineConfig):
        self.machine_config = machine_config
        n = cols.n
        machine = Machine(machine_config)
        recorder = _Recorder()
        machine.add_listener(recorder)

        hook_off = array("q", bytes(8 * (n + 1)))
        pig = array("B", bytes(n))
        sharer_off = array("q", bytes(8 * (n + 1)))
        sharer_line = array("q")
        sharer_flag = array("B")

        access = machine.access
        charge = machine.charge
        has_other_sharers = machine.has_other_sharers
        num_cores = machine_config.num_cores
        memory_source = SourceKind.MEMORY
        n_sharers = 0

        kinds = cols.kind
        tids = cols.tid
        addrs = cols.addr
        sizes = cols.size
        cycles_col = cols.cycles
        for i in range(n):
            hook_off[i] = len(recorder.code)
            sharer_off[i] = n_sharers
            kind = kinds[i]
            if kind <= 1:  # READ / WRITE
                core = tids[i] % num_cores
                result = access(core, addrs[i], sizes[i], kind == 1)
                count = 0
                for line_result in result.lines:
                    source = line_result.fill_source
                    if source is not None and source.kind is not memory_source:
                        count += 1
                    victim = line_result.l1_victim
                    if victim is not None and victim.dirty:
                        count += 1
                pig[i] = count
                for line_result in result.lines:
                    line_addr = line_result.line_addr
                    sharer_line.append(line_addr)
                    sharer_flag.append(
                        1 if has_other_sharers(line_addr, excluding=core) else 0
                    )
                    n_sharers += 1
            elif kind == KIND_COMPUTE:
                charge(cycles_col[i], "compute")
            elif kind != KIND_BARRIER:  # LOCK / UNLOCK
                access(tids[i] % num_cores, addrs[i], _LOCK_WORD_BYTES, True)
        hook_off[n] = len(recorder.code)
        sharer_off[n] = n_sharers

        machine.remove_listener(recorder)
        self.hook_off = hook_off
        self.hook_code = recorder.code
        self.hook_line = recorder.line
        self.hook_core = recorder.core
        self.hook_aux = recorder.aux
        self.pig = pig
        self.sharer_off = sharer_off
        self.sharer_line = sharer_line
        self.sharer_flag = sharer_flag
        self.machine_cycles = machine.cycles
        self.machine_stats = machine.stats.snapshot()
        self.bus_stats = machine.bus.stats.snapshot()

    @classmethod
    def for_columns(
        cls, cols: ColumnarTrace, machine_config: MachineConfig
    ) -> "MachineTape":
        """The tape for ``(cols, machine_config)``, memoised on ``cols``."""
        tape = cols._tapes.get(machine_config)
        if tape is None:
            tape = cls(cols, machine_config)
            cols._tapes[machine_config] = tape
        return tape
