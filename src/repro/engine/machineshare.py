"""Shared data-path replay: one :class:`Machine` feeding many detectors.

Every machine-backed detector drives the simulated CMP through the same
*canonical* sequence (documented on :class:`repro.reporting.DetectorCore`):
lock/unlock as one 4-byte write of the lock word, each memory access exactly
once with the op's address/size/kind, compute charged once, nothing on
barriers.  Two detectors with equal :class:`~repro.common.config.MachineConfig`s
therefore replay *identical* cache and coherence state — the paper's
identical-execution methodology (Section 5.1) made literal.

A :class:`MachineGroup` exploits that: it owns the one real
:class:`~repro.sim.machine.Machine`, performs the canonical work once per
event, and hands each member detector a :class:`MachineLane` — a
machine-compatible facade that returns the shared
:class:`~repro.sim.machine.AccessResult` and keeps the detector's *own*
cycle charges and stat counters in a private ledger.  A lane's ``cycles``
and ``stats`` are the shared baseline plus its private detector costs, so
every member's :class:`~repro.reporting.DetectionResult` is bit-for-bit what
a solo replay would have produced.
"""

from __future__ import annotations

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.common.events import OpKind
from repro.common.stats import StatCounters
from repro.core.detector import LOCK_WORD_BYTES
from repro.sim.machine import AccessResult, Machine


class LaneBus:
    """Per-lane view of the shared fabric: private metadata accounting.

    Data traffic (fills, writebacks, invalidations) is shared state and
    accrues on the real fabric; *detector* metadata traffic — piggybacks
    and candidate-set publications — differs per detector and lands in the
    lane's ledger.  The cycle/byte arithmetic consumes the shared fabric's
    :class:`~repro.sim.bus.MetaCostModel`, so a lane charges exactly what
    the real fabric would — on the snoopy bus (where piggybacks count no
    transaction while broadcasts do) and on the directory fabric (where a
    publication is a point-to-point home-node update) alike.
    """

    def __init__(self, lane: "MachineLane"):
        self._lane = lane
        self._model = lane._shared.bus.meta_model

    @property
    def stats(self) -> StatCounters:
        """Shared data-traffic counters plus this lane's metadata traffic."""
        merged = StatCounters()
        merged.merge(self._lane._shared.bus.stats)
        merged.merge(self._lane._bus_stats)
        return merged

    @property
    def cycles(self) -> int:
        """Shared bus cycles plus this lane's metadata cycles."""
        return self._lane._shared.bus.cycles + self._lane._bus_cycles

    def metadata_piggyback(self, meta_bits: int) -> int:
        """Charge metadata riding an existing transfer (lane-private)."""
        lane = self._lane
        model = self._model
        lane._bus_stats.add(model.metadata_bytes_key, (meta_bits + 7) // 8)
        cycles = model.piggyback_cycles
        lane._bus_cycles += cycles
        lane._bus_stats.add(model.piggyback_cycle_key, cycles)
        return cycles

    def metadata_broadcast(self, meta_bits: int) -> int:
        """Charge a standalone candidate-set publication (lane-private)."""
        lane = self._lane
        model = self._model
        lane._bus_stats.add(model.metadata_bytes_key, (meta_bits + 7) // 8)
        if model.update_control_bytes:
            lane._bus_stats.add(model.control_bytes_key, model.update_control_bytes)
        cycles = model.update_cycles
        lane._bus_cycles += cycles
        lane._bus_stats.add(model.update_cycle_key, cycles)
        lane._bus_stats.add(model.update_count_key)
        return cycles


class MachineLane:
    """One detector's machine-compatible view of a shared replay.

    ``access`` returns the result the group computed for the current event
    (the canonical-sequence invariant guarantees the lane owner would have
    issued the same call); ``charge`` skips ``"compute"`` — the group
    charges it once on the shared machine — and books everything else
    privately.  ``cycles``/``stats`` merge shared baseline + private ledger.
    """

    def __init__(self, shared: Machine):
        self._shared = shared
        self._result: AccessResult | None = None
        self._cycles = 0
        self._stats = StatCounters()
        self._bus_stats = StatCounters()
        self._bus_cycles = 0
        self.config = shared.config
        self.bus = LaneBus(self)

    def access(self, core: int, addr: int, size: int, is_write: bool = False):
        """The shared :class:`AccessResult` for the current event."""
        return self._result

    def charge(self, cycles: int, reason: str) -> None:
        """Book detector cycles privately; ``compute`` is already shared."""
        if reason == "compute":
            return
        if cycles < 0:
            raise SimulationError(f"negative cycle charge: {cycles}")
        self._cycles += cycles
        self._stats.add(f"cycles.{reason}", cycles)

    @property
    def cycles(self) -> int:
        """Shared machine cycles plus this lane's private charges."""
        return self._shared.cycles + self._cycles

    @property
    def stats(self) -> StatCounters:
        """Shared machine counters plus this lane's private charges."""
        merged = StatCounters()
        merged.merge(self._shared.stats)
        merged.merge(self._stats)
        return merged

    def core_for_thread(self, thread_id: int) -> int:
        """Delegate thread placement to the shared machine."""
        return self._shared.core_for_thread(thread_id)

    def sharers(self, line_addr: int, *, excluding: int | None = None):
        """Delegate sharer lookup to the shared machine."""
        return self._shared.sharers(line_addr, excluding=excluding)

    def has_other_sharers(self, line_addr: int, *, excluding: int) -> bool:
        """Delegate the sharer fast path to the shared machine."""
        return self._shared.has_other_sharers(line_addr, excluding=excluding)

    def add_listener(self, listener) -> None:
        """Attach a metadata store to the shared machine's cache events."""
        self._shared.add_listener(listener)

    def remove_listener(self, listener) -> None:
        """Detach a listener from the shared machine."""
        self._shared.remove_listener(listener)


class MachineGroup:
    """One shared machine replay and the lanes drawing from it."""

    def __init__(self, machine_config: MachineConfig):
        self.machine_config = machine_config
        self.machine = Machine(machine_config)
        self.lanes: list[MachineLane] = []
        #: Cores assigned to this group (filled by the session).
        self.members: list = []
        #: Machine accesses performed once on the shared replay.  Each one
        #: is a dedup win of (members - 1) avoided replays — the quantity
        #: the flight recorder reports as the lane dedup hit ratio.
        self.accesses = 0

    def lane(self) -> MachineLane:
        """A new lane over the shared machine (one per member detector)."""
        lane = MachineLane(self.machine)
        self.lanes.append(lane)
        return lane

    def feed(self, event) -> None:
        """Perform the canonical data-path work for one event, once."""
        op = event.op
        kind = op.kind
        machine = self.machine
        if kind is OpKind.COMPUTE:
            machine.charge(op.cycles, "compute")
        elif kind is OpKind.BARRIER:
            return
        elif kind is OpKind.LOCK or kind is OpKind.UNLOCK:
            self.accesses += 1
            result = machine.access(
                machine.core_for_thread(event.thread_id),
                op.addr,
                LOCK_WORD_BYTES,
                True,
            )
            for lane in self.lanes:
                lane._result = result
        else:
            self.accesses += 1
            result = machine.access(
                machine.core_for_thread(event.thread_id),
                op.addr,
                op.size,
                op.is_write,
            )
            for lane in self.lanes:
                lane._result = result
