"""``repro.engine`` — the single-pass multi-detector engine.

One trace walk feeds any number of incremental detector cores
(:class:`~repro.reporting.DetectorCore`); machine-backed cores with equal
machine configurations share a single cache/coherence replay.  See
``docs/architecture.md`` for where this sits in the layer stack.
"""

from repro.engine.machineshare import LaneBus, MachineGroup, MachineLane
from repro.engine.session import EngineError, EngineSession, detect_with_engine
from repro.engine.shard import DEFAULT_SHARD_THRESHOLD, run_sharded
from repro.engine.tape import MachineTape

__all__ = [
    "DEFAULT_SHARD_THRESHOLD",
    "EngineError",
    "EngineSession",
    "detect_with_engine",
    "run_sharded",
    "LaneBus",
    "MachineGroup",
    "MachineLane",
    "MachineTape",
]
